"""Streaming cross-shard record exchange: correctness, faults, stress.

Three layers of coverage for the long-lived worker pool and the concurrent
machinery under it:

* **Semantics** — cross-shard serving cuts measurements deterministically in
  the serial interleaving, fresh runs stay bit-identical to ``tune_direct``,
  and record injection never perturbs an in-flight session.
* **Fault injection** — a worker SIGKILLed mid-run, poisoned record
  envelopes on the exchange, and a database save interrupted between the
  temp-file write and ``os.replace``: the pool must degrade gracefully and
  the parent database must stay uncorrupted.
* **Stress / properties** — a 16-thread ``submit()`` hammer with records
  streaming in (marked ``slow``), and the order-independence property that
  makes streaming apply safe: any arrival permutation of a record set is
  equivalent to one bulk ``merge()``.
"""

import multiprocessing
import os
import random
import signal
import threading
import time

import pytest

from repro.conv import ConvParams
from repro.core.autotune import (
    RecordEnvelope,
    TuningDatabase,
    TuningDatabaseError,
    TuningRecord,
)
from repro.gpusim import V100
from repro.obs import MonotonicClock
from repro.service import TuningRequest, TuningService, TuningWorkerPool

import repro.service.pool as pool_module

A = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)
B = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)
C = ConvParams.square(16, 32, 48, kernel=3, stride=1, padding=1)
D = ConvParams.square(11, 24, 40, kernel=3, stride=1, padding=1)

BUDGET = 24


def _request(params=A, seed=1, budget=BUDGET, **kw):
    return TuningRequest(
        params, V100, algorithm="direct", max_measurements=budget, seed=seed, **kw
    )


def _trajectory(result):
    return [(t.config.key(), t.time_seconds) for t in result.trials]


def _record_for(request, time_seconds, budget=None):
    """A well-formed record covering ``request`` (same conditions)."""
    space_config = request.tune_direct().best_config
    return TuningRecord(
        params=request.params,
        gpu=request.spec.name,
        algorithm=request.algorithm,
        config=space_config,
        time_seconds=time_seconds,
        gflops=1.0,
        budget=budget if budget is not None else request.max_measurements,
        noise=request.noise,
        noise_seed=request.noise_seed,
    )


#: two problems, each requested under two different seeds, interleaved so the
#: seed variants of one problem land in *different* shards (round-robin over
#: distinct requests): shard0 = [A(s1), B(s2)], shard1 = [B(s1), A(s2)].
#: With windowed admission each shard's second request is still in the
#: backlog when the other shard's record arrives -> served with zero
#: measurements.  Merge-at-end tunes all four.
CROSS_SHARD_WORKLOAD = [
    _request(A, seed=1),
    _request(B, seed=1),
    _request(B, seed=2),
    _request(A, seed=2),
]


class TestCrossShardStreaming:
    def test_serial_streaming_cuts_measurements_deterministically(self):
        merge_pool = TuningWorkerPool(
            num_workers=2, streaming=False, use_processes=False
        )
        merge_results = merge_pool.tune(list(CROSS_SHARD_WORKLOAD))
        stream_pool = TuningWorkerPool(
            num_workers=2, streaming=True, admit_window=1, use_processes=False
        )
        stream_results = stream_pool.tune(list(CROSS_SHARD_WORKLOAD))

        # Strictly fewer measurements: one fresh run per problem instead of
        # one per (problem, seed).  Serial interleaving is deterministic, so
        # these are exact counts, not bounds.
        assert stream_pool.stats.measurements < merge_pool.stats.measurements
        assert merge_pool.stats.tuning_runs == 4
        assert stream_pool.stats.tuning_runs == 2
        assert stream_pool.stats.database_hits == 2
        assert stream_pool.stats.records_streamed >= 2
        assert stream_pool.stats.records_applied >= 2

        # Every request still gets a covering answer: fresh runs reproduce
        # tune_direct bit-for-bit; served ones return a genuine record for
        # their problem under their own measurement conditions and budget.
        for request, result in zip(CROSS_SHARD_WORKLOAD, stream_results):
            if result.from_cache:
                assert result.best_time <= min(
                    r.best_time
                    for q, r in zip(CROSS_SHARD_WORKLOAD, merge_results)
                    if q.params == request.params
                )
            else:
                assert _trajectory(result) == _trajectory(request.tune_direct())

    def test_streaming_never_measures_more(self):
        # Windowed admission can only convert fresh runs into database hits,
        # never add runs (identical in-flight duplicates bypass the window).
        workload = CROSS_SHARD_WORKLOAD + [_request(A, seed=1), _request(C, seed=3)]
        merge_pool = TuningWorkerPool(num_workers=2, streaming=False, use_processes=False)
        merge_pool.tune(list(workload))
        stream_pool = TuningWorkerPool(
            num_workers=2, streaming=True, admit_window=1, use_processes=False
        )
        stream_pool.tune(list(workload))
        assert stream_pool.stats.measurements <= merge_pool.stats.measurements
        assert stream_pool.stats.tuning_runs <= merge_pool.stats.tuning_runs

    def test_process_streaming_matches_and_fills_parent_database(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        db = TuningDatabase()
        pool = TuningWorkerPool(num_workers=2, use_processes=True)
        results = pool.tune(list(CROSS_SHARD_WORKLOAD), database=db)
        assert pool.used_processes
        assert pool.stats.mode == "processes"
        assert pool.stats.worker_failures == 0
        # The parent database covers both problems whatever the timing, and
        # every fresh result is bit-identical to its direct run.
        assert len(db) == 2
        for request, result in zip(CROSS_SHARD_WORKLOAD, results):
            if not result.from_cache:
                assert _trajectory(result) == _trajectory(request.tune_direct())
            record = db.lookup(
                request.params,
                request.spec,
                request.algorithm,
                budget=request.max_measurements,
                noise=request.noise,
                noise_seed=request.noise_seed,
            )
            assert record is not None
            assert record.time_seconds <= result.best_time

    def test_unpruned_duplicates_still_coalesce_through_the_window(self):
        workload = [_request(A, pruned=False)] * 3 + [_request(B, seed=2)]
        pool = TuningWorkerPool(
            num_workers=2, streaming=True, admit_window=1, use_processes=False
        )
        results = pool.tune(workload)
        # All three unpruned duplicates rode one run (they can never be
        # database-served, so admission must not separate them).
        assert pool.stats.tuning_runs == 2
        assert pool.stats.coalesced == 2
        reference = workload[0].tune_direct()
        for result in results[:3]:
            assert result.best_config == reference.best_config

    def test_distant_unpruned_duplicate_coalesces_too(self):
        # Regression: a duplicate queued *behind* other requests used to be
        # admitted only after its twin's run retired, re-tuning from
        # scratch — the streaming pool then measured MORE than merge-at-end.
        # Duplicates are pulled forward at their twin's admission, so the
        # backlog distance must not matter.
        workload = [
            _request(A, pruned=False),
            _request(B, seed=1),
            _request(C, seed=1),
            _request(D, seed=1),
            _request(A, pruned=False),  # same shard as [0], two slots back
        ]
        merge_pool = TuningWorkerPool(num_workers=2, streaming=False, use_processes=False)
        merge_results = merge_pool.tune(list(workload))
        stream_pool = TuningWorkerPool(
            num_workers=2, streaming=True, admit_window=1, use_processes=False
        )
        stream_results = stream_pool.tune(list(workload))
        assert stream_pool.stats.tuning_runs <= merge_pool.stats.tuning_runs
        assert stream_pool.stats.measurements <= merge_pool.stats.measurements
        assert stream_pool.stats.coalesced == 1
        # Ordering survives out-of-order admission: result[4] is request[4]'s.
        for a, b in zip(merge_results, stream_results):
            assert a.best_config == b.best_config

    def test_exchange_broadcasts_the_keep_better_winner(self):
        # Regression: the exchange used to forward the raw incoming record
        # even when apply() kept a better existing one (e.g. a faster
        # caller-database record at a lower budget, upgraded on collision).
        # The other shards must be seeded with the surviving best, so a
        # served request gets what a sequential client of the shared
        # database would have been handed.
        fast_time = 1e-9  # unbeatable: any fresh run loses the collision
        fast = _record_for(_request(A), fast_time, budget=8)  # 8 < BUDGET
        db = TuningDatabase([fast])
        pool = TuningWorkerPool(
            num_workers=2, streaming=True, admit_window=1, use_processes=False
        )
        results = pool.tune(list(CROSS_SHARD_WORKLOAD), database=db)
        assert pool.stats.pre_served == 0  # budget 8 covers no request
        served_a = [
            result
            for request, result in zip(CROSS_SHARD_WORKLOAD, results)
            if request.params == A and result.from_cache
        ]
        assert served_a, "no A request was cross-shard served"
        for result in served_a:
            assert result.best_time == fast_time
        # The collision upgraded the fast record's budget, not replaced it.
        surviving = db.lookup(A, V100, "direct")
        assert surviving.time_seconds == fast_time
        assert surviving.budget >= BUDGET

    def test_admit_window_zero_admits_everything(self):
        pool = TuningWorkerPool(
            num_workers=2, streaming=True, admit_window=0, use_processes=False
        )
        results = pool.tune(list(CROSS_SHARD_WORKLOAD))
        # All-at-once admission: nothing is left in the backlog to be served
        # by a synced record, so every distinct request runs (the classic
        # batch behaviour, retained behind a knob).
        assert pool.stats.tuning_runs == 4
        assert len(results) == 4


class TestRecordInjection:
    def test_injection_never_perturbs_inflight_sessions(self):
        request = _request(B, budget=BUDGET)
        reference = request.tune_direct()
        service = TuningService()
        future = service.submit(request)
        assert service.step()  # the run is now mid-flight
        planted = _record_for(request, reference.best_time / 2, budget=10**6)
        assert service.inject_records([planted]) == [planted]
        assert service.stats.records_injected == 1
        assert service.stats.records_applied == 1
        service.drain()
        # The in-flight run never consulted the database: its trajectory is
        # bit-identical to tune_direct despite a strictly better record
        # arriving mid-run.
        assert _trajectory(future.result()) == _trajectory(reference)
        # A *new* submit is served from the injected record instead.
        repeat = service.submit(request)
        assert repeat.done() and repeat.from_database
        assert repeat.result().best_time == planted.time_seconds

    def test_losing_injection_is_counted_but_not_applied(self):
        request = _request(A)
        service = TuningService()
        service.tune([request])
        stored = service.database.lookup(A, V100, "direct")
        worse = _record_for(request, stored.time_seconds * 2)
        assert service.inject_records([worse]) == []
        assert service.stats.records_injected == 1
        assert service.stats.records_applied == 0
        assert service.database.lookup(A, V100, "direct") is stored


class TestFaultInjection:
    def test_worker_killed_mid_run_degrades_gracefully(self, monkeypatch, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("worker-kill fault injection needs fork")
        parent_pid = os.getpid()
        original_step = pool_module._ShardRunner.step

        def lethal_step(self):
            # In the worker whose shard leads with problem B: die (SIGKILL —
            # no cleanup, no goodbye) on the second scheduling round, i.e.
            # mid-run.  The parent process (and the in-parent recovery rerun)
            # must keep the original behaviour.
            if os.getpid() != parent_pid:
                if not hasattr(self, "_doomed"):
                    self._doomed = bool(self.pending) and self.pending[0][1].params == B
                    self._rounds = 0
                self._rounds += 1
                if self._doomed and self._rounds >= 2:
                    os.kill(os.getpid(), signal.SIGKILL)
            return original_step(self)

        monkeypatch.setattr(pool_module._ShardRunner, "step", lethal_step)
        workload = [_request(A, seed=1), _request(B, seed=1), _request(C, seed=1)]
        db = TuningDatabase()
        pool = TuningWorkerPool(
            num_workers=2, start_method="fork", use_processes=True
        )
        results = pool.tune(workload, database=db)

        assert pool.used_processes
        assert pool.stats.worker_failures == 1
        # Every request is still answered, bit-identical where freshly run.
        for request, result in zip(workload, results):
            if not result.from_cache:
                assert _trajectory(result) == _trajectory(request.tune_direct())
        # The parent database is complete and uncorrupted: it holds all
        # three problems and survives a save/load round trip.
        assert len(db) == 3
        path = tmp_path / "after-kill.json"
        db.save(path)
        assert len(TuningDatabase.load(path)) == 3

    def test_poisoned_outgoing_envelopes_are_dropped_not_applied(self, monkeypatch):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("cross-process poisoning needs fork")
        # Poison the wire itself: every streamed envelope turns to garbage in
        # transit.  The parent must drop and count them all, apply nothing
        # mid-run, and still produce complete results via the workers' final
        # reports.
        monkeypatch.setattr(
            RecordEnvelope,
            "to_wire",
            lambda self: {"v": 1, "origin": "??", "revision": None, "record": 13},
        )
        db = TuningDatabase()
        pool = TuningWorkerPool(num_workers=2, start_method="fork", use_processes=True)
        results = pool.tune(list(CROSS_SHARD_WORKLOAD), database=db)
        assert pool.stats.poisoned_envelopes > 0
        assert pool.stats.records_streamed == 0
        assert pool.stats.records_applied == 0
        assert len(results) == len(CROSS_SHARD_WORKLOAD)
        for request, result in zip(CROSS_SHARD_WORKLOAD, results):
            if not result.from_cache:
                assert _trajectory(result) == _trajectory(request.tune_direct())
        assert len(db) == 2  # final merge still completed the database

    @pytest.mark.parametrize(
        "wire",
        [
            "junk",
            42,
            None,
            {},
            {"v": 99, "origin": 0, "revision": 0, "record": {}},
            {"v": 1, "origin": 0, "revision": 0, "record": {"gpu": "V100"}},
            {"v": 1, "origin": 0, "revision": 0, "record": "not-a-dict"},
            ("record", 0, {}),
        ],
    )
    def test_malformed_envelopes_rejected(self, wire):
        with pytest.raises(TuningDatabaseError):
            RecordEnvelope.from_wire(wire)
        assert pool_module._decode_envelope(wire) is None

    def test_nan_and_nonpositive_times_are_poison(self):
        request = _request(A)
        for bad_time in (float("nan"), float("inf"), 0.0, -1.0):
            wire = RecordEnvelope(
                record=_record_for(request, 1e-3), origin=0, revision=1
            ).to_wire()
            wire["record"]["time_seconds"] = bad_time
            with pytest.raises(TuningDatabaseError):
                RecordEnvelope.from_wire(wire)

    def test_parent_ingest_counts_poison_and_survives(self):
        pool = TuningWorkerPool(num_workers=2, use_processes=False)
        exchange = TuningDatabase()
        pool._ingest_record({"v": 1, "record": "junk"}, 0, exchange, None)
        pool._ingest_record("not even a dict", 1, exchange, None)
        assert pool.stats.poisoned_envelopes == 2
        assert pool.stats.records_streamed == 0
        assert len(exchange) == 0
        # A valid envelope still flows after the poison.
        request = _request(A)
        good = RecordEnvelope(record=_record_for(request, 1e-3)).to_wire()
        pool._ingest_record(good, 0, exchange, None)
        assert pool.stats.records_streamed == 1
        assert pool.stats.records_applied == 1
        assert len(exchange) == 1

    @pytest.mark.parametrize(
        "message",
        [
            "not a tuple",
            ("done",),  # wrong arity
            ("done", "zero", {}),  # non-int shard index
            ("done", True, {}),  # bool masquerading as an index
            ("done", 7, {"results": []}),  # index out of range
            ("record", 0, "junk"),  # poisoned envelope payload
            ("shrug", 0, {}),  # unknown tag
        ],
    )
    def test_corrupted_results_queue_messages_are_dropped(self, message):
        pool = TuningWorkerPool(num_workers=2, use_processes=False)
        outputs: dict = {}
        failures: dict = {}
        shards = [[_request(A)], [_request(B)]]
        pool._handle_message(message, outputs, failures, TuningDatabase(), None, shards)
        assert pool.stats.poisoned_envelopes == 1
        assert outputs == {} and failures == {}

    def test_malformed_completion_report_degrades_to_failure(self):
        # A "done" whose payload fails validation must not crash the parent
        # later (KeyError on payload["results"]); the shard is marked failed
        # and re-runs in the parent like a dead worker.
        pool = TuningWorkerPool(num_workers=2, use_processes=False)
        outputs: dict = {}
        failures: dict = {}
        shards = [[_request(A)], [_request(B)]]
        for bad_payload in ({}, {"results": "oops"}, {"results": [1, 2, 3]}):
            pool._handle_message(
                ("done", 0, bad_payload), outputs, {}, TuningDatabase(), None, shards
            )
        pool._handle_message(
            ("done", 1, {"results": "oops"}), outputs, failures, TuningDatabase(), None, shards
        )
        assert outputs == {}
        assert failures == {1: "malformed completion report"}

    def test_drain_skips_corrupted_pipe_frames(self):
        # A sender killed mid-put leaves frames that raise on deserialize;
        # _drain must skip them (bounded, no spin) and keep the good ones.
        import queue as queue_module

        class FlakyQueue:
            def __init__(self, items, bad_frames):
                self.items = list(items)
                self.bad_frames = bad_frames

            def get_nowait(self):
                if self.bad_frames:
                    self.bad_frames -= 1
                    raise EOFError("truncated pickle frame")
                if self.items:
                    return self.items.pop(0)
                raise queue_module.Empty

        assert pool_module._drain(FlakyQueue(["a", "b"], bad_frames=3)) == ["a", "b"]
        # A permanently wedged pipe terminates instead of spinning forever.
        assert pool_module._drain(FlakyQueue([], bad_frames=10**9)) == []

    def test_interrupted_save_leaves_database_intact(self, tmp_path, monkeypatch):
        # TuningDatabase.save crashing *between* writing the temp file and
        # os.replace: the previous on-disk state must survive byte-for-byte,
        # no temp litter may remain, and the database object stays usable.
        db = TuningDatabase()
        pool = TuningWorkerPool(num_workers=2, use_processes=False)
        pool.tune(list(CROSS_SHARD_WORKLOAD), database=db)
        path = tmp_path / "db.json"
        db.save(path)
        before = path.read_text()
        size_before = len(db)

        request = _request(C, seed=9, budget=8)
        db.put(_record_for(request, 1e-3, budget=8))
        monkeypatch.setattr(
            os, "replace", lambda *a: (_ for _ in ()).throw(OSError("power cut"))
        )
        with pytest.raises(OSError):
            db.save(path)
        monkeypatch.undo()
        assert path.read_text() == before
        assert os.listdir(tmp_path) == ["db.json"]
        assert len(TuningDatabase.load(path)) == size_before
        # The database itself is unharmed: the retried save persists all.
        db.save(path)
        assert len(TuningDatabase.load(path)) == len(db) == size_before + 1

    def test_truncated_database_file_is_a_loud_error(self, tmp_path):
        path = tmp_path / "trunc.json"
        TuningDatabase([_record_for(_request(A), 1e-3)]).save(path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(TuningDatabaseError, match="trunc.json"):
            TuningDatabase.load(path)


class TestStreamingApplyProperties:
    def _record_pool(self):
        """Records with colliding keys, conditions, budgets, times — and
        exact time *ties* between different configurations, the case where
        order-independence needs the deterministic tie-break."""
        from repro.core.autotune import SearchSpace

        rng = random.Random(11)
        records = []
        for params in (A, B):
            space = SearchSpace(params, V100, "direct", pruned=True)
            configs = [space.random_configuration(rng) for _ in range(3)]
            for noise_seed in (2021, 7):
                for _ in range(5):
                    records.append(
                        TuningRecord(
                            params=params,
                            gpu="V100",
                            algorithm="direct",
                            config=rng.choice(configs),
                            time_seconds=rng.choice((1e-4, 5e-4, 1e-3)),
                            gflops=rng.uniform(1.0, 100.0),
                            budget=rng.choice((0, 8, 64, 256)),
                            noise=0.05,
                            noise_seed=noise_seed,
                        )
                    )
        return records

    @staticmethod
    def _canonical(db):
        return sorted(
            (r.key(), r.conditions(), r.time_seconds, r.config.key(), r.budget)
            for r in db.records()
        )

    def test_any_arrival_permutation_equals_bulk_merge(self):
        records = self._record_pool()
        reference = TuningDatabase()
        reference.apply(records)
        rng = random.Random(99)
        for _ in range(20):
            permutation = list(records)
            rng.shuffle(permutation)
            db = TuningDatabase()
            for record in permutation:  # one-at-a-time streaming arrival
                db.apply([record])
            assert self._canonical(db) == self._canonical(reference)

    def test_split_streams_interleaved_equal_merge(self):
        # Two shards streaming disjoint halves into a parent in alternating
        # chunks — the worker-pool topology — still equals one bulk merge.
        records = self._record_pool()
        reference = TuningDatabase()
        reference.apply(records)
        halves = (records[::2], records[1::2])
        db = TuningDatabase()
        for chunk_a, chunk_b in zip(halves[0], halves[1]):
            db.apply([chunk_a])
            db.apply([chunk_b])
        assert self._canonical(db) == self._canonical(reference)

    def test_equal_time_ties_break_deterministically(self):
        # Two shards can find *different* configs with exactly equal
        # simulated times; the survivor must be a function of the record
        # set (config-key tie-break), not of queue-arrival order.
        from repro.core.autotune import SearchSpace

        rng = random.Random(3)
        space = SearchSpace(A, V100, "direct", pruned=True)
        c1 = space.random_configuration(rng)
        c2 = space.random_configuration(rng)
        assert c1.key() != c2.key()

        def rec(config):
            return TuningRecord(
                params=A, gpu="V100", algorithm="direct", config=config,
                time_seconds=1e-3, gflops=1.0,
            )

        forward = TuningDatabase()
        forward.apply([rec(c1)])
        forward.apply([rec(c2)])
        backward = TuningDatabase()
        backward.apply([rec(c2)])
        backward.apply([rec(c1)])
        assert forward.records()[0].config == backward.records()[0].config
        assert forward.records()[0].config.key() == min(c1.key(), c2.key())

    def test_revision_streams_only_effective_changes(self):
        request = _request(A)
        slow = _record_for(request, 2e-3)
        fast = _record_for(request, 1e-3)
        db = TuningDatabase()
        rev0 = db.revision
        assert db.apply([slow]) == [slow]
        assert db.changes_since(rev0) == [slow]
        mark = db.revision
        assert db.apply([slow]) == []  # idempotent: no re-broadcast
        assert db.changes_since(mark) == []
        assert db.apply([fast]) == [fast]
        assert db.changes_since(mark) == [fast]
        assert db.apply([slow]) == []  # monotonic: can never regress
        assert db.revision == mark + 1

    def test_change_log_compacts_with_safe_over_delivery(self, monkeypatch):
        # A daemon-lifetime database must not grow its change log forever;
        # once compacted, a stale checkpoint over-delivers (harmless under
        # keep-better apply) while fresh checkpoints still stream exactly
        # the tail.
        import repro.core.autotune.store as store_module

        monkeypatch.setattr(store_module, "_CHANGE_LOG_CAP", 8)
        base = _record_for(_request(A), 1e-3)
        db = TuningDatabase()
        for i in range(40):  # 40 effective inserts, distinct problems
            db.put(
                TuningRecord(
                    params=A.with_batch(i + 1), gpu="V100", algorithm="direct",
                    config=base.config, time_seconds=1e-3, gflops=1.0,
                )
            )
        assert db.revision == 40
        assert len(db.store._change_log) < 2 * 8
        # Stale checkpoint (compacted away): the whole map is delivered.
        assert len(db.changes_since(0)) == 40
        # Fresh checkpoint: exactly the records stored after it.
        mark = db.revision
        late = TuningRecord(
            params=A.with_batch(99), gpu="V100", algorithm="direct",
            config=base.config, time_seconds=1e-3, gflops=1.0,
        )
        db.put(late)
        assert db.changes_since(mark) == [late]

    def test_envelope_wire_round_trip(self):
        record = _record_for(_request(B), 3e-4)
        envelope = RecordEnvelope(record=record, origin=3, revision=17)
        decoded = RecordEnvelope.from_wire(envelope.to_wire())
        assert decoded == envelope


@pytest.mark.slow
class TestSubmitStress:
    """Hammer ``submit()`` from 16 threads while records stream in.

    Seeded and exact: whatever the interleaving, the accounting identity
    ``coalesced + database_hits + tuning_runs == requests`` must hold and
    every future must resolve to the distinct request's reference optimum
    (fresh runs are bit-identical; served runs return the planted/stored
    record, which *is* the reference best).
    """

    THREADS = 16
    PER_THREAD = 12

    def test_hammered_submit_accounting_stays_exact(self):
        # Four distinct problems (not problem variants): each request has
        # exactly one record that can ever serve it, so per-request
        # reference equality stays exact under any serving interleaving.
        distinct = [
            _request(A, seed=1),
            _request(B, seed=1),
            _request(C, seed=1),
            _request(D, seed=1, budget=16),
        ]
        references = {r: r.tune_direct() for r in distinct}
        # Records streamed in mid-run are exactly the reference optima, so a
        # submit served by one still resolves to its reference best.
        records = [
            TuningRecord(
                params=r.params,
                gpu=r.spec.name,
                algorithm=r.algorithm,
                config=references[r].best_config,
                time_seconds=references[r].best_time,
                gflops=references[r].best_trial.gflops,
                budget=r.max_measurements,
                noise=r.noise,
                noise_seed=r.noise_seed,
            )
            for r in distinct
        ]

        service = TuningService()
        futures = []
        futures_lock = threading.Lock()
        start = threading.Barrier(self.THREADS + 1)
        stop_injecting = threading.Event()

        def client(thread_index):
            rng = random.Random(1000 + thread_index)
            start.wait()
            for _ in range(self.PER_THREAD):
                request = rng.choice(distinct)
                future = service.submit(request)
                with futures_lock:
                    futures.append((request, future))

        def injector():
            rng = random.Random(4242)
            while not stop_injecting.is_set():
                service.inject_records([rng.choice(records)])
                time.sleep(0.0005)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(self.THREADS)
        ]
        injection_thread = threading.Thread(target=injector)
        for thread in threads:
            thread.start()
        injection_thread.start()
        start.wait()
        # Drive scheduling concurrently with the submitters, like a
        # production driver thread would.
        clock = MonotonicClock()
        deadline = clock.now() + 120.0
        while any(thread.is_alive() for thread in threads):
            service.drain()
            assert clock.now() < deadline, "stress drive wedged"
        for thread in threads:
            thread.join()
        service.drain()
        stop_injecting.set()
        injection_thread.join()

        stats = service.stats
        total = self.THREADS * self.PER_THREAD
        assert stats.requests == total
        # Exact conservation: every request was answered exactly one way.
        assert stats.coalesced + stats.database_hits + stats.tuning_runs == total
        # Coalescing + serving keep fresh runs at or under one per distinct
        # request (injection can only shave runs off, never add them).
        assert stats.tuning_runs <= len(distinct)
        assert stats.completed_runs == stats.tuning_runs
        for request, future in futures:
            result = future.result(timeout=10)
            reference = references[request]
            assert result.best_time == reference.best_time
            assert result.best_config == reference.best_config
        assert service.num_active == 0
        assert len(service.coalescer) == 0


# -- long-lived serving mode ----------------------------------------------- #
def _pump(pool, limit=200_000):
    """Drive pool.step() to quiescence (bounded; fails loudly if wedged)."""
    for _ in range(limit):
        if not pool.step():
            return
    raise AssertionError("serving pool never went idle")


class TestServingMode:
    """The pool's submit/drain-incremental mode (what backs the daemon)."""

    def test_serial_serving_is_bit_identical_and_coalesces(self):
        pool = TuningWorkerPool(num_workers=3, use_processes=False)
        pool.start()
        assert pool.serving
        requests = [_request(A, seed=1), _request(B, seed=1), _request(A, seed=2)]
        futures = [pool.submit(r) for r in requests]
        duplicate = pool.submit(_request(A, seed=1))  # same rid as futures[0]
        _pump(pool)
        for request, future in zip(requests, futures):
            assert _trajectory(future.result()) == _trajectory(request.tune_direct())
        # The duplicate coalesced inside its shard: one run, two answers.
        assert duplicate.done()
        assert pool.stats.coalesced == 1
        assert pool.stats.tuning_runs == 3
        pool.stop()
        assert not pool.serving

    def test_shard_assignment_is_rid_stable(self):
        # Equal requests always land in the same shard — across deadline
        # variants (excluded from the rid) and across pool instances (no
        # dependence on Python's per-process salted hash()).
        for shards in (1, 2, 3, 7):
            a = pool_module._shard_for_request(_request(A, seed=1), shards)
            b = pool_module._shard_for_request(_request(A, seed=1, deadline=9.0), shards)
            assert a == b
            assert 0 <= a < shards

    def test_tune_refuses_while_serving_and_submit_refuses_before_start(self):
        pool = TuningWorkerPool(num_workers=1, use_processes=False)
        with pytest.raises(RuntimeError):
            pool.submit(_request())
        pool.start()
        with pytest.raises(RuntimeError):
            pool.tune([_request()])
        with pytest.raises(RuntimeError):
            pool.start()
        pool.stop()
        # A stopped pool is reusable: batch mode works again.
        assert pool.tune([_request(budget=6)])[0].num_measurements > 0

    def test_serving_records_pre_serve_after_restart(self):
        db = TuningDatabase()
        pool = TuningWorkerPool(num_workers=2, use_processes=False)
        pool.start(database=db)
        first = pool.submit(_request(A, seed=1))
        _pump(pool)
        pool.stop()
        assert len(db) == 1
        pool.start(database=db)
        again = pool.submit(_request(A, seed=1))
        _pump(pool)
        pool.stop()
        assert again.from_database
        assert again.result().best_time == first.result().best_time
        assert pool.stats.measurements == 0  # second session: zero re-measurement

    def test_stop_drains_the_backlog(self):
        pool = TuningWorkerPool(num_workers=1, use_processes=False)
        pool.start()
        request = _request(A, seed=1, budget=24)
        future = pool.submit(request)
        # No pumping: stop() drains the backlog itself, so the future
        # resolves with the real (bit-identical) result, not a cancellation.
        pool.stop()
        assert future.done()
        assert _trajectory(future.result()) == _trajectory(request.tune_direct())

    def test_cancel_answers_every_waiter_and_unqueues(self):
        pool = TuningWorkerPool(num_workers=1, use_processes=False)
        pool.start()
        request = _request(A, seed=1, budget=200)
        future = pool.submit(request)
        survivor = pool.submit(_request(B, seed=1, budget=6))
        assert pool.cancel(request)
        assert future.done()
        with pytest.raises(Exception):
            future.result()
        _pump(pool)
        assert survivor.done()
        assert _trajectory(survivor.result()) == _trajectory(
            _request(B, seed=1, budget=6).tune_direct()
        )
        pool.stop()

    def test_terminate_fails_futures_and_pool_restarts(self):
        pool = TuningWorkerPool(num_workers=1, use_processes=False)
        pool.start()
        future = pool.submit(_request(A, seed=1, budget=200))
        pool.terminate()
        assert future.done()
        assert not pool.serving
        pool.start()
        pool.stop()

    def test_process_serving_matches_serial(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("process serving comparison needs fork")
        requests = [_request(A, seed=1), _request(B, seed=1), _request(C, seed=2)]
        serial_pool = TuningWorkerPool(num_workers=2, use_processes=False)
        serial_pool.start()
        serial = [serial_pool.submit(r) for r in requests]
        _pump(serial_pool)
        serial_pool.stop()

        proc_pool = TuningWorkerPool(
            num_workers=2, start_method="fork", use_processes=True
        )
        proc_pool.start()
        assert proc_pool.used_processes
        procs = [proc_pool.submit(r) for r in requests]
        _pump(proc_pool)
        proc_pool.stop()
        for s, p in zip(serial, procs):
            assert _trajectory(s.result()) == _trajectory(p.result())

    def test_serving_worker_sigkill_fails_over(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("worker-kill fault injection needs fork")
        db = TuningDatabase()
        pool = TuningWorkerPool(
            num_workers=2, start_method="fork", use_processes=True
        )
        pool.start(database=db)
        futures = [
            pool.submit(_request(A, seed=1, budget=40)),
            pool.submit(_request(B, seed=1, budget=40)),
        ]
        victim_shard = pool._serve_tickets[0][0]
        os.kill(pool._serve_workers[victim_shard].pid, signal.SIGKILL)
        _pump(pool)
        for request, future in zip([_request(A, seed=1, budget=40), _request(B, seed=1, budget=40)], futures):
            result = future.result()
            if not result.from_cache:
                assert _trajectory(result) == _trajectory(request.tune_direct())
        pool.stop()
        assert pool.stats.worker_failures == 1
        assert len(db) == 2  # both problems landed despite the kill
