"""The daemonised process wrapper: pidfile discipline, lifecycle, smoke.

The fast tests drive :func:`repro.service.daemonize.serve_forever` in a
thread with an injected ``stop_event`` (no forking, no signals); the
``slow``-marked smoke test runs the real CLI — double-fork/setsid
detachment, a submit over the unix socket, SIGTERM, clean drain and
pidfile removal — exactly what ``make daemonize-smoke`` gates.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.conv import ConvParams
from repro.gpusim import V100
from repro.service import (
    DaemonClient,
    PidfileError,
    SocketTransport,
    TuningRequest,
    serve_forever,
)
from repro.service.daemonize import _check_pidfile

SMALL = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)


def _request(seed=0, budget=6):
    return TuningRequest(
        SMALL, V100, max_measurements=budget, seed=seed, pruned=True, tuner="random"
    )


def _wait_for(predicate, timeout=20.0, interval=0.05):
    deadline_polls = max(1, int(timeout / interval))
    for _ in range(deadline_polls):
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class _Wrapper:
    """serve_forever in a thread, shutdown via the injected stop event."""

    def __init__(self, tmp_path, **kwargs):
        self.journal = str(tmp_path / "daemon.journal")
        self.socket = str(tmp_path / "daemon.sock")
        self.pidfile = str(tmp_path / "daemon.pid")
        self.stop_event = threading.Event()
        self.exit_code = None

        def run():
            self.exit_code = serve_forever(
                self.journal,
                self.socket,
                self.pidfile,
                stop_event=self.stop_event,
                **kwargs,
            )

        self.thread = threading.Thread(target=run, daemon=True)

    def __enter__(self):
        self.thread.start()
        assert _wait_for(lambda: os.path.exists(self.socket)), "socket never bound"
        return self

    def __exit__(self, *exc):
        self.stop_event.set()
        self.thread.join(timeout=30)


class TestServeForever:
    def test_lifecycle_pool_backend(self, tmp_path, capsys):
        with _Wrapper(tmp_path, backend="pool-serial", workers=2) as wrapper:
            assert os.path.exists(wrapper.pidfile)
            with open(wrapper.pidfile) as handle:
                assert int(handle.read().strip()) == os.getpid()
            client = DaemonClient(SocketTransport(wrapper.socket))
            assert client.ping()
            result = client.submit_and_wait(_request())
            assert result.num_measurements == 6
        assert wrapper.exit_code == 0
        # Clean shutdown removed both the pidfile and the socket.
        assert not os.path.exists(wrapper.pidfile)
        assert not os.path.exists(wrapper.socket)

    def test_live_pidfile_refuses_start(self, tmp_path):
        with _Wrapper(tmp_path, backend="service") as wrapper:
            with pytest.raises(PidfileError):
                serve_forever(
                    wrapper.journal,
                    str(tmp_path / "other.sock"),
                    wrapper.pidfile,  # names this live process
                    stop_event=threading.Event(),
                )
        assert wrapper.exit_code == 0

    def test_stale_pidfile_is_replaced(self, tmp_path):
        pidfile = str(tmp_path / "stale.pid")
        with open(pidfile, "w") as handle:
            handle.write("999999999\n")  # beyond pid_max: guaranteed dead
        _check_pidfile(pidfile)
        assert not os.path.exists(pidfile)

    def test_garbled_pidfile_is_replaced(self, tmp_path):
        pidfile = str(tmp_path / "garbled.pid")
        with open(pidfile, "w") as handle:
            handle.write("not a pid\n")
        _check_pidfile(pidfile)
        assert not os.path.exists(pidfile)


@pytest.mark.slow
class TestDaemonizeSmoke:
    def test_daemonize_cli_sigterm_drains_cleanly(self, tmp_path):
        """The `make daemonize-smoke` scenario, end to end: launch the CLI
        (double-fork detach), tune over the socket, SIGTERM the pid from
        the pidfile, and assert a clean drain — pidfile and socket gone,
        the drain summary in the log."""
        journal = str(tmp_path / "d.journal")
        sock = str(tmp_path / "d.sock")
        pidfile = str(tmp_path / "d.pid")
        log = str(tmp_path / "d.log")
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        launcher = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.service.daemonize",
                "--journal",
                journal,
                "--socket",
                sock,
                "--pidfile",
                pidfile,
                "--log",
                log,
                "--backend",
                "pool-serial",
                "--workers",
                "2",
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert launcher.returncode == 0, launcher.stderr
        assert _wait_for(lambda: os.path.exists(sock)), "daemon socket never bound"
        assert os.path.exists(pidfile)
        with open(pidfile) as handle:
            pid = int(handle.read().strip())
        assert pid > 0  # the detached grandchild, not the exited launcher
        client = DaemonClient(SocketTransport(sock))
        assert client.ping()
        result = client.submit_and_wait(_request(seed=3))
        assert result.num_measurements == 6
        os.kill(pid, signal.SIGTERM)
        assert _wait_for(
            lambda: not os.path.exists(pidfile)
        ), "pidfile survived SIGTERM"
        assert _wait_for(lambda: not os.path.exists(sock))
        with open(log) as handle:
            text = handle.read()
        assert "drained cleanly" in text
