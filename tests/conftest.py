"""Shared fixtures for the test-suite."""

from __future__ import annotations

import os
import random
import sys

import numpy as np
import pytest

from repro.conv import ConvParams
from repro.gpusim import GTX_1080TI, V100

# Make the repository root importable so tests can exercise repo tooling
# (tools.reprolint); PYTHONPATH=src only covers the library itself.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def pyrng():
    return random.Random(1234)


@pytest.fixture
def small_params():
    """A small stride-1 3x3 problem usable by every algorithm."""
    return ConvParams.square(8, in_channels=3, out_channels=4, kernel=3, stride=1, padding=1)


@pytest.fixture
def tiny_params():
    """A tiny problem whose DAG can be built explicitly."""
    return ConvParams.square(4, in_channels=2, out_channels=2, kernel=3, stride=1)


@pytest.fixture
def strided_params():
    return ConvParams.square(13, in_channels=5, out_channels=7, kernel=5, stride=2, padding=2)


@pytest.fixture
def layer_params():
    """A realistic layer (ResNet-ish) used by bound/dataflow tests."""
    return ConvParams.square(56, in_channels=256, out_channels=128, kernel=3, stride=1, padding=1)


@pytest.fixture
def v100():
    return V100


@pytest.fixture
def gtx1080ti():
    return GTX_1080TI


@pytest.fixture
def fast_memory():
    """48 KiB of fp32 elements — a typical per-block shared memory budget."""
    return 12288
