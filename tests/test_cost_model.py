"""Tests for the gradient-boosted cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.autotune import CostModel, GradientBoostedTrees, RegressionTree


def _make_regression(n=200, d=6, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, d))
    y = 2.0 * x[:, 0] - 1.5 * np.abs(x[:, 1]) + 0.5 * x[:, 2] * x[:, 3] + noise * rng.standard_normal(n)
    return x, y


class TestRegressionTree:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2, max_candidate_splits=64).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < 0.01

    def test_depth_limits_nodes(self):
        x, y = _make_regression()
        shallow = RegressionTree(max_depth=2).fit(x, y)
        deep = RegressionTree(max_depth=5).fit(x, y)
        assert shallow.num_nodes <= deep.num_nodes

    def test_constant_target(self):
        x, _ = _make_regression(50)
        tree = RegressionTree().fit(x, np.full(50, 3.0))
        assert np.allclose(tree.predict(x), 3.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)

    def test_min_samples_leaf_respected(self):
        x, y = _make_regression(30)
        tree = RegressionTree(max_depth=8, min_samples_leaf=10).fit(x, y)
        # With a large leaf size, the tree cannot overfit to every point.
        assert np.mean((tree.predict(x) - y) ** 2) > 0


class TestGradientBoostedTrees:
    def test_beats_single_tree(self):
        x, y = _make_regression(300, seed=1)
        x_test, y_test = _make_regression(100, seed=2)
        tree_mse = np.mean((RegressionTree(max_depth=3).fit(x, y).predict(x_test) - y_test) ** 2)
        gbt_mse = np.mean(
            (GradientBoostedTrees(n_estimators=60, seed=3).fit(x, y).predict(x_test) - y_test) ** 2
        )
        assert gbt_mse < tree_mse

    def test_training_error_decreases_with_estimators(self):
        x, y = _make_regression(200, seed=5)
        few = GradientBoostedTrees(n_estimators=5, seed=0).fit(x, y)
        many = GradientBoostedTrees(n_estimators=80, seed=0).fit(x, y)
        assert np.mean((many.predict(x) - y) ** 2) < np.mean((few.predict(x) - y) ** 2)

    def test_deterministic_given_seed(self):
        x, y = _make_regression(100)
        a = GradientBoostedTrees(seed=9).fit(x, y).predict(x)
        b = GradientBoostedTrees(seed=9).fit(x, y).predict(x)
        assert np.array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 3)))

    def test_rank_correlation_on_heldout(self):
        """The model must rank configurations usefully, not just regress."""
        x, y = _make_regression(400, seed=11)
        model = GradientBoostedTrees(n_estimators=80, seed=1).fit(x[:300], y[:300])
        pred = model.predict(x[300:])
        true = y[300:]
        rank_pred = np.argsort(np.argsort(pred))
        rank_true = np.argsort(np.argsort(true))
        corr = np.corrcoef(rank_pred, rank_true)[0, 1]
        assert corr > 0.7


class TestCostModel:
    def test_untrained_below_min_samples(self):
        cm = CostModel(min_samples=10)
        trained = cm.fit(np.zeros((4, 3)), [1.0] * 4)
        assert not trained and not cm.is_trained

    def test_trains_and_ranks(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=(60, 5))
        runtimes = 1e-3 * (1.0 + 3.0 * x[:, 0])  # feature 0 drives runtime
        cm = CostModel(min_samples=8, seed=1)
        assert cm.fit(x, runtimes)
        order = cm.rank(x)
        # The best-ranked config should be among the truly fastest quartile.
        assert runtimes[order[0]] <= np.quantile(runtimes, 0.25)

    def test_predict_runtime_positive(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(size=(40, 4))
        cm = CostModel(min_samples=8)
        cm.fit(x, 1e-3 + 1e-3 * x[:, 0])
        assert np.all(cm.predict_runtime(x) > 0)

    def test_ignores_invalid_runtimes(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(size=(20, 4))
        runtimes = [float("inf")] * 15 + [1e-3] * 5
        cm = CostModel(min_samples=8)
        assert not cm.fit(x, runtimes)  # only 5 valid samples < min_samples
        assert cm.num_samples == 5

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CostModel().predict_score(np.zeros((1, 3)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            CostModel().fit(np.zeros((3, 2)), [1.0, 2.0])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(30, 120))
def test_property_gbt_reduces_training_error_vs_mean(seed, n):
    """Boosting always fits the training set at least as well as the mean."""
    x, y = _make_regression(n, seed=seed)
    model = GradientBoostedTrees(n_estimators=25, seed=seed).fit(x, y)
    mse_model = float(np.mean((model.predict(x) - y) ** 2))
    mse_mean = float(np.var(y))
    assert mse_model <= mse_mean + 1e-9
