"""Property-based tests (hypothesis) for the convolution algorithms."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.conv import (
    ConvParams,
    direct_conv2d,
    im2col_conv2d,
    max_abs_error,
    winograd_conv2d,
)


def _operands(params, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(params.input_shape)
    w = rng.standard_normal(params.kernel_shape)
    return x, w


def _rel_err(a, b):
    scale = max(1.0, float(np.max(np.abs(a))))
    return max_abs_error(a, b) / scale


conv_problems = st.builds(
    ConvParams.square,
    size=st.integers(5, 14),
    in_channels=st.integers(1, 4),
    out_channels=st.integers(1, 4),
    kernel=st.integers(1, 3),
    stride=st.integers(1, 2),
    padding=st.integers(0, 1),
    batch=st.integers(1, 2),
)

winograd_problems = st.builds(
    ConvParams.square,
    size=st.integers(5, 12),
    in_channels=st.integers(1, 3),
    out_channels=st.integers(1, 3),
    kernel=st.integers(2, 3),
    stride=st.just(1),
    padding=st.integers(0, 1),
)


@settings(max_examples=40, deadline=None)
@given(params=conv_problems, seed=st.integers(0, 2**16))
def test_im2col_always_matches_direct(params, seed):
    x, w = _operands(params, seed)
    assert _rel_err(direct_conv2d(x, w, params), im2col_conv2d(x, w, params)) < 1e-9


@settings(max_examples=30, deadline=None)
@given(params=winograd_problems, e=st.integers(2, 4), seed=st.integers(0, 2**16))
def test_winograd_always_matches_direct(params, e, seed):
    x, w = _operands(params, seed)
    assert _rel_err(direct_conv2d(x, w, params), winograd_conv2d(x, w, params, e=e)) < 1e-7


@settings(max_examples=25, deadline=None)
@given(params=conv_problems, seed=st.integers(0, 2**16), alpha=st.floats(-3, 3))
def test_direct_conv_is_linear_in_kernel(params, seed, alpha):
    x, w = _operands(params, seed)
    w2 = np.random.default_rng(seed + 1).standard_normal(params.kernel_shape)
    lhs = direct_conv2d(x, w + alpha * w2, params)
    rhs = direct_conv2d(x, w, params) + alpha * direct_conv2d(x, w2, params)
    assert _rel_err(lhs, rhs) < 1e-9


@settings(max_examples=25, deadline=None)
@given(params=conv_problems, seed=st.integers(0, 2**16))
def test_zero_kernel_gives_zero_output(params, seed):
    x, _ = _operands(params, seed)
    w = np.zeros(params.kernel_shape)
    assert np.all(direct_conv2d(x, w, params) == 0)


@settings(max_examples=25, deadline=None)
@given(params=conv_problems, seed=st.integers(0, 2**16))
def test_output_shape_matches_params(params, seed):
    x, w = _operands(params, seed)
    assert direct_conv2d(x, w, params).shape == params.output_shape


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(5, 10),
    cin=st.integers(1, 3),
    cout=st.integers(1, 3),
    seed=st.integers(0, 2**16),
)
def test_channel_permutation_equivariance(size, cin, cout, seed):
    """Permuting output channels of the kernel permutes output channels."""
    params = ConvParams.square(size, cin, cout, kernel=3, stride=1)
    x, w = _operands(params, seed)
    perm = np.random.default_rng(seed).permutation(cout)
    out = direct_conv2d(x, w, params)
    out_perm = direct_conv2d(x, w[perm], params)
    assert np.allclose(out[:, perm], out_perm)
