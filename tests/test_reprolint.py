"""Fixture tests for ``tools/reprolint`` — the repo-contract checker.

Every rule gets at least one *positive* fixture (the bad pattern is caught,
at the right line, with the right code) and one *negative* fixture (the
sanctioned pattern passes).  Fixtures are written into a temp directory
shaped like the repository (``src/repro/...``, ``tests/...``) because rule
scopes are expressed as repo-relative path prefixes; ``run_paths(root=...)``
anchors them there.

The final test runs the linter over the *actual* repository — the same
invocation as ``make reprolint`` / CI — so a contract violation introduced
anywhere in ``src/``/``tests/``/``benchmarks/`` fails tier-1 too, not just
the lint job.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from tools.reprolint import all_codes, all_rules, run_paths
from tools.reprolint.baseline import load_baseline, split_baselined, write_baseline
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.runner import REPO_ROOT


def lint(tmp_path, files, use_baseline=False, baseline_path=None):
    """Write ``files`` (relpath -> source) under ``tmp_path`` and lint it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source).lstrip("\n"))
    return run_paths(
        [str(tmp_path)],
        root=str(tmp_path),
        use_baseline=use_baseline,
        baseline_path=baseline_path,
    )


def codes(result):
    return [f.code for f in result.findings]


def lines(result, code):
    return [f.line for f in result.findings if f.code == code]


# --------------------------------------------------------------------------- #
class TestFramework:
    def test_rule_catalogue(self):
        rules = all_rules()
        assert len(rules) >= 6
        table = all_codes()
        assert len(table) >= 6
        assert all(code.startswith("REPRO") for code in table)
        # one description per code, all non-empty
        assert all(table.values())

    def test_parse_error_is_reported_not_fatal(self, tmp_path):
        result = lint(tmp_path, {"src/broken.py": "def f(:\n", "src/ok.py": "x = 1\n"})
        assert codes(result) == ["REPRO000"]
        assert result.files == 2

    def test_findings_sorted_and_positioned(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/a.py": """
                import random

                def f():
                    b = random.random()
                    a = random.random()
                    return a, b
                """
            },
        )
        assert codes(result) == ["REPRO102", "REPRO102"]
        assert lines(result, "REPRO102") == [4, 5]


# --------------------------------------------------------------------------- #
class TestRngDiscipline:
    def test_unseeded_constructors_caught(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/a.py": """
                import random
                import numpy as np

                r = random.Random()
                g = np.random.default_rng()
                s = np.random.SeedSequence()
                n = np.random.default_rng(None)
                """
            },
        )
        assert codes(result) == ["REPRO101"] * 4
        assert lines(result, "REPRO101") == [4, 5, 6, 7]

    def test_global_state_calls_caught(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "tests/t.py": """
                import random
                import numpy as np

                random.seed(7)
                x = random.random()
                np.random.shuffle([1, 2])
                sr = random.SystemRandom()
                """
            },
        )
        assert codes(result) == ["REPRO102"] * 4

    def test_from_import_binding_resolved(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/a.py": """
                from random import random as rnd
                from numpy.random import default_rng

                x = rnd()
                g = default_rng()
                """
            },
        )
        assert codes(result) == ["REPRO102", "REPRO101"]

    def test_seeded_generators_pass(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/a.py": """
                import random
                import numpy as np

                r = random.Random(7)
                g = np.random.default_rng(7)
                kids = np.random.SeedSequence(1).spawn(3)
                gen = np.random.Generator(np.random.PCG64(5))
                y = r.random()  # method on an owned generator: fine
                z = g.standard_normal(4)
                """
            },
        )
        assert result.ok


# --------------------------------------------------------------------------- #
LOCKED_CLASS_HEADER = """
import threading

class Store:
    def __init__(self):
        self._lock = threading.RLock()
        self._records = {}
        self.hits = 0

    def put(self, k, v):
        with self._lock:
            self._records[k] = v
            self.hits += 1
"""


class TestLockDiscipline:
    def test_unlocked_access_caught(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/store.py": LOCKED_CLASS_HEADER
                + """
    def peek(self, k):
        return self._records.get(k)
                """
            },
        )
        assert codes(result) == ["REPRO201"]
        assert lines(result, "REPRO201") == [15]
        assert "peek" in result.findings[0].message

    def test_non_underscore_counter_also_guarded(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/store.py": LOCKED_CLASS_HEADER
                + """
    def describe(self):
        return f"{self.hits} hits"
                """
            },
        )
        assert codes(result) == ["REPRO201"]

    def test_locked_access_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/store.py": LOCKED_CLASS_HEADER
                + """
    def peek(self, k):
        with self._lock:
            return self._records.get(k)
                """
            },
        )
        assert result.ok

    def test_lock_held_docstring_exempts_helper(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/store.py": LOCKED_CLASS_HEADER
                + """
    def _evict(self, k):
        \"\"\"Drop one key (lock held).\"\"\"
        del self._records[k]
                """
            },
        )
        assert result.ok

    def test_init_and_methods_and_unguarded_attrs_exempt(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/store.py": LOCKED_CLASS_HEADER
                + """
    def reset(self):
        # calling an own method (which takes the lock itself) is fine,
        # and attrs never touched under the lock are not guarded.
        self.put("a", 1)
        self.label = "fresh"
                """
            },
        )
        assert result.ok

    def test_rule_scoped_to_src(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "tests/helper.py": LOCKED_CLASS_HEADER
                + """
    def peek(self, k):
        return self._records.get(k)
                """
            },
        )
        assert result.ok


# --------------------------------------------------------------------------- #
class TestFrozenMutation:
    def test_self_mutation_in_frozen_class_caught(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/m.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Point:
                    x: int

                    def shift(self, dx):
                        self.x = self.x + dx
                """
            },
        )
        assert codes(result) == ["REPRO301"]
        assert lines(result, "REPRO301") == [8]

    def test_post_init_object_setattr_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/m.py": """
                import dataclasses

                @dataclasses.dataclass(frozen=True)
                class Point:
                    x: int

                    def __post_init__(self):
                        object.__setattr__(self, "x", abs(self.x))

                    def shifted(self, dx):
                        return dataclasses.replace(self, x=self.x + dx)
                """
            },
        )
        assert result.ok

    def test_cross_file_instance_mutation_caught(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/m.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Space:
                    pruned: bool

                    @classmethod
                    def square(cls, pruned=True):
                        return cls(pruned)
                """,
                "tests/t.py": """
                from m import Space

                def test_mutate():
                    s = Space(True)
                    s.pruned = False
                    p = Space.square()
                    p.pruned = False
                """,
            },
        )
        assert codes(result) == ["REPRO302", "REPRO302"]
        assert lines(result, "REPRO302") == [5, 7]

    def test_reassigned_name_stops_tracking(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/m.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Space:
                    pruned: bool

                class Bag:
                    pass

                def f():
                    s = Space(True)
                    s = Bag()
                    s.pruned = False  # now a mutable Bag: fine
                """
            },
        )
        assert result.ok


# --------------------------------------------------------------------------- #
GOOD_SESSION = """
class GoodSession:
    def __init__(self):
        self.result = object()
        self._done = False

    @property
    def finished(self):
        return self._done

    def propose(self):
        return []

    def update(self, configs, executions):
        self._done = True
"""


class TestSessionPurity:
    def test_good_session_passes(self, tmp_path):
        result = lint(tmp_path, {"src/s.py": GOOD_SESSION})
        assert result.ok

    def test_wrong_shapes_caught(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/s.py": """
                class BadSession:
                    def propose(self, batch_size):
                        return []

                    def update(self, configs):
                        pass
                """
            },
        )
        found = codes(result)
        assert found == ["REPRO401"] * 4  # propose arity, update arity,
        # missing finished, missing result
        # missing-finished/-result anchor at the class (line 1); the arity
        # findings anchor at their defs.
        assert lines(result, "REPRO401") == [1, 1, 2, 5]

    def test_database_reference_caught(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/s.py": GOOD_SESSION.replace(
                    "    def update(self, configs, executions):\n        self._done = True\n",
                    """\
    def update(self, configs, executions):
        if TuningDatabase is not None:
            self.engine.database.lookup(configs)
        self._done = True
""",
                )
            },
        )
        assert codes(result) == ["REPRO402", "REPRO402"]

    def test_protocol_definition_exempt(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/p.py": """
                from typing import Protocol

                class SessionProtocol(Protocol):
                    def propose(self):
                        ...

                    def update(self, configs, executions):
                        ...
                """
            },
        )
        assert result.ok

    def test_non_session_class_ignored(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/s.py": """
                class Planner:
                    def propose(self, idea):  # no update(): not a session
                        return idea
                """
            },
        )
        assert result.ok


# --------------------------------------------------------------------------- #
class TestBatchedPath:
    def test_scalar_calls_in_src_caught(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/hot.py": """
                from repro.core.autotune import ScalarRandomWalkExplorer
                from repro.core.autotune.features import feature_vector

                def slow(measurer, configs, params, spec):
                    rows = [feature_vector(c, params, spec) for c in configs]
                    return [measurer.measure(c) for c in configs], rows
                """
            },
        )
        assert codes(result) == ["REPRO501"] * 4
        # import, import, feature_vector name load, .measure() call
        assert lines(result, "REPRO501") == [1, 2, 5, 6]

    def test_batched_calls_pass(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/hot.py": """
                from repro.core.autotune import ParallelRandomWalkExplorer
                from repro.core.autotune.features import feature_matrix

                def fast(measurer, configs, array, params, spec):
                    rows = feature_matrix(array, params, spec)
                    return measurer.measure_batch(configs), rows
                """
            },
        )
        assert result.ok

    def test_allowlisted_module_and_tests_exempt(self, tmp_path):
        source = """
        def helper(measurer, c):
            return measurer.measure(c)
        """
        result = lint(
            tmp_path,
            {
                "src/repro/core/autotune/config.py": source,
                "tests/test_parity.py": source,
                "benchmarks/bench_x.py": source,
            },
        )
        assert result.ok


# --------------------------------------------------------------------------- #
class TestCoreDeterminism:
    def test_clock_and_env_reads_in_core_caught(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/core/autotune/x.py": """
                import os
                import time
                from time import perf_counter

                def f():
                    t0 = time.time()
                    t1 = perf_counter()
                    flag = os.environ.get("FAST")
                    alt = os.getenv("ALT")
                    return t0, t1, flag, alt
                """
            },
        )
        assert codes(result) == [
            "REPRO601",
            "REPRO601",
            "REPRO602",
            "REPRO602",
        ]
        assert lines(result, "REPRO601") == [6, 7]
        assert lines(result, "REPRO602") == [8, 9]

    def test_outside_core_scope_is_repro701_not_601(self, tmp_path):
        # Clock reads outside the core are no longer exempt — they trip the
        # repo-wide clock-discipline rule instead of the core-only one, and
        # exactly once per read (the scopes are disjoint).
        result = lint(
            tmp_path,
            {
                "src/repro/service/driver.py": """
                import time

                def wall():
                    return time.perf_counter()
                """,
                "benchmarks/bench_y.py": """
                import time

                def wall():
                    return time.time()
                """,
            },
        )
        assert codes(result) == ["REPRO701", "REPRO701"]

    def test_deterministic_core_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/core/autotune/x.py": """
                import math

                def f(xs):
                    return sorted(math.log2(x) for x in xs)
                """
            },
        )
        assert result.ok


# --------------------------------------------------------------------------- #
class TestClockDiscipline:
    def test_clock_reads_caught_everywhere(self, tmp_path):
        # REPRO701 is repo-wide: tests, tools and service code alike.
        result = lint(
            tmp_path,
            {
                "tests/test_x.py": """
                import time

                def wall():
                    return time.monotonic()
                """,
                "tools/helper.py": """
                from time import perf_counter_ns

                def wall():
                    return perf_counter_ns()
                """,
                "src/repro/service/driver.py": """
                import datetime

                def stamp():
                    return datetime.datetime.now()
                """,
            },
        )
        assert codes(result) == ["REPRO701", "REPRO701", "REPRO701"]

    def test_clock_edge_module_exempt(self, tmp_path):
        # src/repro/obs/clock.py is the one sanctioned edge.
        result = lint(
            tmp_path,
            {
                "src/repro/obs/clock.py": """
                import time

                class MonotonicClock:
                    def now(self):
                        return time.perf_counter()
                """
            },
        )
        assert result.ok

    def test_core_reads_stay_repro601(self, tmp_path):
        # Inside the core scopes REPRO601 owns the finding — exactly one
        # report per read, never a 601+701 double.
        result = lint(
            tmp_path,
            {
                "src/repro/core/autotune/x.py": """
                import time

                def f():
                    return time.time()
                """
            },
        )
        assert codes(result) == ["REPRO601"]

    def test_sleep_is_not_a_clock_read(self, tmp_path):
        # Pacing is allowed; only *reading* the clock is disciplined.
        result = lint(
            tmp_path,
            {
                "tests/test_pacing.py": """
                import time

                def pace():
                    time.sleep(0.01)
                """
            },
        )
        assert result.ok


# --------------------------------------------------------------------------- #
class TestSuppressions:
    BAD = """
    import random

    x = random.random()
    """

    def test_same_line_suppression(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/a.py": """
                import random

                x = random.random()  # reprolint: disable=REPRO102 - fixture
                """
            },
        )
        assert result.ok
        assert result.suppressed == 1

    def test_comment_above_suppression(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/a.py": """
                import random

                # reprolint: disable=REPRO102 - fixture
                x = random.random()
                """
            },
        )
        assert result.ok and result.suppressed == 1

    def test_disable_all_and_multiple_codes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/a.py": """
                import random

                x = random.random()  # reprolint: disable=all
                y = random.Random()  # reprolint: disable=REPRO101,REPRO102
                """
            },
        )
        assert result.ok and result.suppressed == 2

    def test_wrong_code_does_not_silence(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/a.py": """
                import random

                x = random.random()  # reprolint: disable=REPRO101 - wrong code
                """
            },
        )
        assert codes(result) == ["REPRO102"]

    def test_unknown_code_reported(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/a.py": """
                x = 1  # reprolint: disable=REPRO999
                """
            },
        )
        assert codes(result) == ["REPRO000"]
        assert "REPRO999" in result.findings[0].message


# --------------------------------------------------------------------------- #
class TestBaseline:
    FILES = {
        "src/a.py": """
        import random

        x = random.random()
        """
    }

    def test_round_trip_grandfathers_findings(self, tmp_path):
        baseline_path = str(tmp_path / "baseline.json")
        first = lint(tmp_path, self.FILES)
        assert codes(first) == ["REPRO102"]

        write_baseline(baseline_path, first.findings)
        loaded = load_baseline(baseline_path)
        assert sum(loaded.values()) == 1

        again = run_paths(
            [str(tmp_path)],
            root=str(tmp_path),
            baseline_path=baseline_path,
            use_baseline=True,
        )
        assert again.ok
        assert [f.code for f in again.baselined] == ["REPRO102"]

    def test_new_findings_still_fail_with_baseline(self, tmp_path):
        baseline_path = str(tmp_path / "baseline.json")
        first = lint(tmp_path, self.FILES)
        write_baseline(baseline_path, first.findings)

        # A second, textually identical violation: the baseline covers one
        # copy (count semantics), the new one fails.
        (tmp_path / "src/a.py").write_text(
            "import random\n\nx = random.random()\nx = random.random()\n"
        )
        again = run_paths(
            [str(tmp_path)],
            root=str(tmp_path),
            baseline_path=baseline_path,
            use_baseline=True,
        )
        assert [f.code for f in again.findings] == ["REPRO102"]
        assert [f.code for f in again.baselined] == ["REPRO102"]

    def test_fingerprint_survives_line_moves(self, tmp_path):
        baseline_path = str(tmp_path / "baseline.json")
        first = lint(tmp_path, self.FILES)
        write_baseline(baseline_path, first.findings)

        # Prepend unrelated lines: the finding moves but stays baselined.
        (tmp_path / "src/a.py").write_text(
            "import random\n\nA = 1\nB = 2\n\nx = random.random()\n"
        )
        again = run_paths(
            [str(tmp_path)],
            root=str(tmp_path),
            baseline_path=baseline_path,
            use_baseline=True,
        )
        assert again.ok and len(again.baselined) == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError):
            load_baseline(str(bad))

    def test_split_respects_counts(self, tmp_path):
        first = lint(tmp_path, self.FILES)
        fp = first.findings[0].fingerprint()
        new, grandfathered = split_baselined(first.findings, {fp: 5})
        assert not new and len(grandfathered) == 1


# --------------------------------------------------------------------------- #
class TestCli:
    def test_exit_codes_and_write_baseline(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "a.py").write_text("import random\nx = random.random()\n")
        baseline = str(tmp_path / "baseline.json")

        argv = ["--root", str(tmp_path), "--baseline", baseline, str(src)]
        assert reprolint_main(argv) == 1
        out = capsys.readouterr().out
        assert "REPRO102" in out and "1 new finding(s)" in out

        assert reprolint_main(argv + ["--write-baseline"]) == 0
        assert reprolint_main(argv) == 0  # grandfathered now
        assert reprolint_main(argv + ["--no-baseline"]) == 1

    def test_json_format(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "a.py").write_text("import random\nx = random.random()\n")
        argv = [
            "--root",
            str(tmp_path),
            "--baseline",
            str(tmp_path / "baseline.json"),
            "--format",
            "json",
            str(src),
        ]
        assert reprolint_main(argv) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "REPRO102"
        assert payload["findings"][0]["fingerprint"]

    def test_missing_path_usage_error(self, tmp_path, capsys):
        assert reprolint_main(["--root", str(tmp_path), "nope"]) == 2

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REPRO101", "REPRO201", "REPRO301", "REPRO401", "REPRO501", "REPRO601"):
            assert code in out


# --------------------------------------------------------------------------- #
class TestRepositoryIsClean:
    def test_repo_passes_reprolint(self):
        """The same gate as ``make reprolint``: no new findings anywhere in
        src/tests/benchmarks/tools against the checked-in baseline."""
        result = run_paths(
            [f"{REPO_ROOT}/{p}" for p in ("src", "tests", "benchmarks", "tools")],
            root=REPO_ROOT,
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_checked_in_baseline_is_empty(self):
        """Repository policy: fix or suppress, don't grandfather."""
        baseline = load_baseline(f"{REPO_ROOT}/tools/reprolint/baseline.json")
        assert baseline == {}
