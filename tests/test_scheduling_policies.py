"""Scheduling policies: fairness and deadline behaviour of service rounds.

Policies choose *which* active sessions propose each round — never *what*
they propose — so these tests pin the scheduling behaviour on deterministic
workloads (single-chain SA sessions propose exactly one configuration per
round, giving measurement-level granularity) and re-assert bit-identity
under every policy.
"""

import pytest

from repro.conv import ConvParams
from repro.gpusim import V100
from repro.service import (
    EarliestDeadlinePolicy,
    FairSharePolicy,
    SchedulingPolicy,
    TuningRequest,
    TuningService,
    TuningWorkerPool,
    UniformPolicy,
    make_policy,
)

SMALL = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)


def _sa_request(budget, seed, deadline=None):
    """A deterministic one-measurement-per-round session (no patience exit)."""
    return TuningRequest(
        SMALL,
        V100,
        max_measurements=budget,
        seed=seed,
        pruned=False,
        tuner="simulated_annealing",
        deadline=deadline,
    )


def _measured(service, future):
    """Measurements taken so far by the run answering ``future``."""
    for run in service._active:
        if run.request == future.request:
            return run.session.result.num_measurements
    return None  # already finalised


class TestPolicyRegistry:
    def test_default_is_uniform(self):
        assert isinstance(TuningService().policy, UniformPolicy)

    def test_names_resolve(self):
        assert isinstance(make_policy("uniform"), UniformPolicy)
        assert isinstance(make_policy("fair_share"), FairSharePolicy)
        assert isinstance(make_policy("edf"), EarliestDeadlinePolicy)
        policy = FairSharePolicy()
        assert make_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("lottery")
        with pytest.raises(ValueError):
            TuningService(policy="lottery")

    def test_describe(self):
        assert "fair_share" in FairSharePolicy().describe()


class TestFairShare:
    def test_budget_proportional_progress(self):
        # Budgets 40 vs 10: under fair share the big request is scheduled 4x
        # as often, so when the small one completes the big one has made
        # ~proportional progress instead of the uniform policy's equal split.
        service = TuningService(policy="fair_share")
        big = service.submit(_sa_request(budget=40, seed=1))
        small = service.submit(_sa_request(budget=10, seed=2))
        while not small.done():
            service.step()
        # Proportional progress means both land within a round of finishing
        # together — the big run is either already done (40 measurements) or
        # nearly so, never at the uniform policy's ~10.
        big_measured = (
            big.result().num_measurements if big.done() else _measured(service, big)
        )
        assert big_measured >= 30
        service.drain()
        assert big.result().num_measurements == 40

    def test_uniform_is_not_proportional(self):
        # Control: under uniform rounds both requests progress in lockstep,
        # so the big request is nowhere near proportional when the small one
        # finishes — the contrast proves fair share is doing the work.
        service = TuningService(policy="uniform")
        big = service.submit(_sa_request(budget=40, seed=1))
        small = service.submit(_sa_request(budget=10, seed=2))
        while not small.done():
            service.step()
        assert _measured(service, big) <= 12
        service.drain()

    def test_equal_budgets_round_robin_in_lockstep(self):
        service = TuningService(policy="fair_share")
        a = service.submit(_sa_request(budget=12, seed=1))
        b = service.submit(_sa_request(budget=12, seed=2))
        service.step()  # both at progress 0 -> both propose
        assert _measured(service, a) == _measured(service, b) == 1
        service.drain()
        assert a.result().num_measurements == b.result().num_measurements == 12

    def test_fair_share_preserves_trajectories(self):
        request = _sa_request(budget=16, seed=5)
        reference = request.tune_direct()
        result = TuningService(policy="fair_share").tune([request])[0]
        assert [t.time_seconds for t in result.trials] == [
            t.time_seconds for t in reference.trials
        ]


class TestEarliestDeadlineFirst:
    def test_urgent_request_completes_first(self):
        service = TuningService(policy="edf")
        background = service.submit(_sa_request(budget=16, seed=1))
        urgent = service.submit(_sa_request(budget=16, seed=2, deadline=1.0))
        while not urgent.done():
            service.step()
        # The urgent run monopolised the pipeline: the background session has
        # not measured a single configuration yet.
        assert not background.done()
        assert _measured(service, background) == 0
        service.drain()
        assert background.done()

    def test_deadline_order_among_deadlined_requests(self):
        service = TuningService(policy="edf")
        later = service.submit(_sa_request(budget=12, seed=1, deadline=5.0))
        sooner = service.submit(_sa_request(budget=12, seed=2, deadline=2.0))
        while not sooner.done():
            service.step()
        assert not later.done()
        service.drain()

    def test_no_deadlines_degrades_to_uniform(self):
        service = TuningService(policy="edf")
        a = service.submit(_sa_request(budget=12, seed=1))
        b = service.submit(_sa_request(budget=12, seed=2))
        service.step()
        assert _measured(service, a) == _measured(service, b) == 1
        service.drain()

    def test_deadline_is_not_part_of_the_coalescing_key(self):
        # Urgency is scheduling metadata: identical searches with different
        # deadlines still share one run (the primary's deadline schedules it).
        service = TuningService(policy="edf")
        service.submit(_sa_request(budget=12, seed=1, deadline=1.0))
        service.submit(_sa_request(budget=12, seed=1, deadline=9.0))
        assert service.stats.coalesced == 1
        assert service.stats.tuning_runs == 1
        service.drain()

    def test_edf_preserves_trajectories(self):
        request = _sa_request(budget=16, seed=5, deadline=1.0)
        reference = request.tune_direct()
        result = TuningService(policy="edf").tune([request])[0]
        assert [t.time_seconds for t in result.trials] == [
            t.time_seconds for t in reference.trials
        ]


class TestPolicyRobustness:
    def test_broken_policy_cannot_stall_the_service(self):
        class Hungry(SchedulingPolicy):
            name = "hungry"

            def select(self, runs):
                return []  # a policy bug: selects nobody

        service = TuningService(policy=Hungry())
        results = service.tune([_sa_request(budget=8, seed=1)])
        assert results[0].num_measurements == 8

    def test_policy_returning_foreign_objects_is_ignored(self):
        class Weird(SchedulingPolicy):
            name = "weird"

            def select(self, runs):
                return ["not-a-run"] + list(runs) + list(runs)  # junk + dupes

        service = TuningService(policy=Weird())
        results = service.tune([_sa_request(budget=8, seed=1)])
        assert results[0].num_measurements == 8

    def test_worker_pool_forwards_policy(self):
        pool = TuningWorkerPool(num_workers=2, policy="fair_share")
        assert isinstance(pool.policy, FairSharePolicy)
        workload = [_sa_request(budget=10, seed=1), _sa_request(budget=10, seed=2)]
        reference = TuningService().tune(workload)
        results = pool.tune(workload)
        for a, b in zip(reference, results):
            assert a.best_time == b.best_time

    def test_pool_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            TuningWorkerPool(policy="lottery")


class TestDeadlineExpiredAtSubmit:
    """Regression (daemon PR satellite): an already-passed deadline is a
    typed up-front rejection, never an admit-then-time-out."""

    def _service(self, now):
        from repro.obs import FakeClock, Observability

        clock = FakeClock(now)
        return TuningService(obs=Observability(enabled=True, clock=clock))

    def test_expired_deadline_rejected_up_front(self):
        from repro.service import DeadlineExpired

        service = self._service(now=10.0)
        with pytest.raises(DeadlineExpired, match="already passed"):
            service.submit(_sa_request(budget=4, seed=0, deadline=5.0))
        # Never admitted: no active run, no request accounted, nothing to
        # time out later.
        assert service.num_active == 0
        assert service.stats.requests == 0

    def test_future_deadline_still_admitted(self):
        service = self._service(now=10.0)
        future = service.submit(_sa_request(budget=4, seed=0, deadline=15.0))
        service.drain()
        assert future.result().num_measurements == 4

    def test_null_clock_keeps_legacy_deadline_semantics(self):
        # Without an injected clock the service clock reads 0.0 forever, so
        # positive deadlines remain pure scheduling metadata (the EDF tests
        # above rely on exactly this).
        service = TuningService()
        future = service.submit(_sa_request(budget=4, seed=0, deadline=1.0))
        service.drain()
        assert future.result().num_measurements == 4


class TestCancel:
    def test_cancel_answers_all_futures_with_typed_error(self):
        from repro.service import RequestCancelled, RequestTimeout

        service = TuningService()
        request = _sa_request(budget=50, seed=3)
        primary = service.submit(request)
        duplicate = service.submit(_sa_request(budget=50, seed=3))
        service.step()
        assert service.cancel(request, RequestTimeout("took too long"))
        for future in (primary, duplicate):
            with pytest.raises(RequestTimeout):
                future.result(timeout=0)
        # The run is retired: nothing active, and a re-cancel finds nothing.
        assert service.num_active == 0
        assert not service.cancel(request)
        # Default exception type.
        again = service.submit(_sa_request(budget=50, seed=4))
        assert service.cancel(again.request)
        with pytest.raises(RequestCancelled):
            again.result(timeout=0)

    def test_cancel_accounts_partial_measurements(self):
        service = TuningService()
        request = _sa_request(budget=50, seed=5)
        future = service.submit(request)
        for _ in range(3):
            service.step()
        partial = next(
            run.measurer.num_measurements
            for run in service._active
            if run.request == request
        )
        assert partial > 0
        assert service.cancel(request)
        # The partial work done before the cancel is accounted exactly like a
        # failed run's: the service-side measurement count, no more, no less.
        assert service.stats.measurements == partial
        assert service.stats.completed_runs == 1
