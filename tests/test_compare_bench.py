"""Tests for the benchmark-telemetry regression alarm (compare_bench.py).

The script is stdlib-only and lives outside the package, so it is loaded by
path and its ``main`` is exercised directly (no subprocess needed).
"""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "compare_bench.py")


@pytest.fixture(scope="module")
def compare_bench():
    spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(path, payload):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


@pytest.fixture
def bench_dir(tmp_path):
    baseline = tmp_path / "baseline.json"
    _write(baseline, {"demo": {"speedup": 5.0, "quality_ratio": 1.0}})
    return tmp_path, str(baseline)


class TestCompareBench:
    def test_ok_within_tolerance(self, compare_bench, bench_dir):
        tmp, baseline = bench_dir
        _write(tmp / "BENCH_demo.json", {"speedup": 4.5, "quality_ratio": 0.97})
        rc = compare_bench.main(
            ["--baseline", baseline, "--bench-dir", str(tmp), "--tolerance", "0.2"]
        )
        assert rc == 0

    def test_regression_fails(self, compare_bench, bench_dir):
        tmp, baseline = bench_dir
        _write(tmp / "BENCH_demo.json", {"speedup": 2.0, "quality_ratio": 0.97})
        rc = compare_bench.main(
            ["--baseline", baseline, "--bench-dir", str(tmp), "--tolerance", "0.2"]
        )
        assert rc == 1

    def test_warn_only_exits_zero(self, compare_bench, bench_dir):
        tmp, baseline = bench_dir
        _write(tmp / "BENCH_demo.json", {"speedup": 2.0, "quality_ratio": 0.97})
        rc = compare_bench.main(
            ["--baseline", baseline, "--bench-dir", str(tmp), "--warn-only"]
        )
        assert rc == 0

    def test_missing_file_is_warning_not_regression(self, compare_bench, bench_dir):
        tmp, baseline = bench_dir
        rc = compare_bench.main(["--baseline", baseline, "--bench-dir", str(tmp)])
        assert rc == 0

    def test_missing_metric_is_warning(self, compare_bench, bench_dir):
        tmp, baseline = bench_dir
        _write(tmp / "BENCH_demo.json", {"speedup": 5.5})
        rc = compare_bench.main(["--baseline", baseline, "--bench-dir", str(tmp)])
        assert rc == 0

    def test_non_numeric_value_is_regression(self, compare_bench, bench_dir):
        tmp, baseline = bench_dir
        _write(tmp / "BENCH_demo.json", {"speedup": "fast", "quality_ratio": 0.97})
        rc = compare_bench.main(["--baseline", baseline, "--bench-dir", str(tmp)])
        assert rc == 1

    def test_malformed_baseline_rejected(self, compare_bench, tmp_path):
        bad = tmp_path / "bad.json"
        _write(bad, {"demo": [1, 2, 3]})
        with pytest.raises(ValueError):
            compare_bench.load_baseline(str(bad))

    def test_repo_baseline_tracks_real_benchmarks(self, compare_bench):
        """The checked-in baseline stays in sync with the benchmarks that
        actually emit telemetry (catches renamed benchmarks/metrics)."""
        baseline = compare_bench.load_baseline(compare_bench.DEFAULT_BASELINE)
        bench_root = os.path.dirname(compare_bench.DEFAULT_BASELINE)
        sources = "\n".join(
            open(os.path.join(bench_root, f), encoding="utf-8").read()
            for f in os.listdir(bench_root)
            if f.startswith("bench_") and f.endswith(".py")
        )
        for name, metrics in baseline.items():
            assert f'"{name}"' in sources, f"baseline entry {name} has no benchmark"
            for metric in metrics:
                assert metric in sources, f"baseline metric {name}.{metric} unknown"
