"""Observability layer — no-op guarantee, bit-identity, snapshot algebra.

The contracts under test, in the order the module docstrings state them:

* **Instrument semantics** — counters are monotonic, gauges track a
  high-water mark, histograms bucket ``v <= bound`` first-fit with an
  overflow bucket, and every edge value lands deterministically.
* **Snapshot algebra** — :meth:`MetricsSnapshot.merged` is associative and
  commutative (fleet totals are independent of shard report order) and
  survives a wire round-trip.
* **True no-op when disabled** — the null instruments are shared singletons
  whose methods record nothing, so the disabled path costs one attribute
  load + one no-op call and never allocates.
* **Bit-identity** — tuning with observability enabled (even on a ticking
  fake clock) yields byte-for-byte the trajectories of the disabled run and
  of ``tune_direct()``; observability is write-only with respect to session
  RNG and database state.
* **Cross-process telemetry** — worker shards ship metric snapshots back in
  their result streams; the parent's merged fleet view equals the in-process
  totals of the identical serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.conv import ConvParams
from repro.gpusim import V100
from repro.obs import (
    FILL_RATIO_BOUNDS,
    NULL_CLOCK,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_OBS,
    NULL_REGISTRY,
    NULL_TRACER,
    Counter,
    FakeClock,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Observability,
    SpanTracer,
    metrics_jsonl,
    prometheus_text,
    spans_jsonl,
    summary,
)
from repro.service import TuningRequest, TuningService, TuningWorkerPool

A = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)
B = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)

BUDGET = 24


def _request(params=A, seed=1, **kw):
    return TuningRequest(
        params, V100, algorithm="direct", max_measurements=BUDGET, seed=seed, **kw
    )


def _trajectory(result):
    return [(t.config.key(), t.time_seconds) for t in result.trials]


def _workload():
    # Duplicates + two problems: exercises coalescing, database serving and
    # multi-session rounds in one small workload.
    return [_request(A, seed=1), _request(B, seed=1), _request(A, seed=1),
            _request(A, seed=2)]


# --------------------------------------------------------------------------- #
class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_high_water(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1
        assert g.high_water == 3

    def test_histogram_bucket_edges(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        # Exactly-on-bound lands in that bucket (v <= bound, first fit);
        # above the last bound lands in overflow.
        for v in (0.5, 1.0, 1.0000001, 2.0, 4.0, 4.0000001, 100.0):
            h.observe(v)
        data = h.data()
        assert data.counts == [2, 2, 1, 2]
        assert data.total == 7
        assert data.min == 0.5
        assert data.max == 100.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_registry_name_conflicts(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 3.0))
        # Get-or-create: same name + same shape returns the same instrument.
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", bounds=(1.0, 2.0)) is reg.histogram(
            "h", bounds=(1.0, 2.0)
        )

    def test_scope_prefixes_nest(self):
        reg = MetricsRegistry()
        reg.scope("svc").scope("db").counter("hits").inc()
        assert reg.snapshot().counters == {"svc.db.hits": 1}


# --------------------------------------------------------------------------- #
class TestSnapshotAlgebra:
    @staticmethod
    def _snap(n):
        reg = MetricsRegistry()
        reg.counter("c").inc(n)
        reg.gauge("g").set(n)
        h = reg.histogram("h", bounds=(1.0, 4.0))
        h.observe(float(n))
        return reg.snapshot()

    def test_merge_associative_and_commutative(self):
        a, b, c = self._snap(1), self._snap(3), self._snap(5)
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        assert left.to_wire() == right.to_wire()
        assert a.merged(b).to_wire() == b.merged(a).to_wire()
        assert left.counters["c"] == 9
        assert left.gauges["g"] == 5  # merged gauges keep the max high-water
        assert left.histograms["h"].total == 3

    def test_wire_round_trip(self):
        snap = self._snap(2).merged(self._snap(7))
        wire = snap.to_wire()
        json.dumps(wire)  # wire form must be plain-JSON shippable
        assert MetricsSnapshot.from_wire(wire).to_wire() == wire

    def test_merge_rejects_mismatched_bounds(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("h", bounds=(1.0, 2.0)).observe(1.0)
        r2.histogram("h", bounds=(1.0, 3.0)).observe(1.0)
        with pytest.raises(ValueError):
            r1.snapshot().merged(r2.snapshot())


# --------------------------------------------------------------------------- #
class TestNullPath:
    def test_disabled_obs_shares_null_singletons(self):
        obs = Observability(enabled=False)
        assert obs.registry is NULL_REGISTRY
        assert obs.tracer is NULL_TRACER
        assert obs.clock is NULL_CLOCK
        assert obs.registry is NULL_OBS.registry

    def test_null_instruments_record_nothing(self):
        reg = NULL_OBS.registry
        assert reg.counter("anything") is NULL_COUNTER
        assert reg.gauge("anything") is NULL_GAUGE
        assert reg.histogram("anything", bounds=(1.0,)) is NULL_HISTOGRAM
        NULL_COUNTER.inc(10)
        NULL_GAUGE.set(10)
        NULL_HISTOGRAM.observe(10)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.high_water == 0
        assert NULL_HISTOGRAM.data().total == 0
        assert NULL_OBS.snapshot().to_wire() == MetricsSnapshot().to_wire()

    def test_null_tracer_span_is_reusable_noop(self):
        with NULL_TRACER.span("a", k=1) as s1:
            with NULL_TRACER.span("b") as s2:
                assert s1 is s2  # one shared no-op context, zero allocation
        assert NULL_TRACER.finished() == []
        assert NULL_CLOCK.now() == 0.0


# --------------------------------------------------------------------------- #
class TestTracer:
    def test_parent_links_and_attrs(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer", shard=2):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.5)
        inner, outer = tracer.finished()
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.attrs == {"shard": 2}
        assert outer.duration == pytest.approx(1.5)
        assert inner.duration == pytest.approx(0.5)

    def test_ring_buffer_bounds_retention(self):
        tracer = SpanTracer(capacity=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        kept = [s.name for s in tracer.finished()]
        assert kept == ["s3", "s4"]
        assert tracer.dropped == 3

    def test_fake_clock_advance(self):
        clock = FakeClock(start=10.0)
        clock.advance(2.5)
        assert clock.now() == 12.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)


# --------------------------------------------------------------------------- #
class TestExporters:
    @staticmethod
    def _snapshot():
        reg = MetricsRegistry()
        reg.counter("svc.requests").inc(4)
        reg.gauge("pool.depth").set(2)
        reg.histogram("svc.fill", bounds=(1.0, 2.0)).observe(1.5)
        return reg.snapshot()

    def test_jsonl_is_parseable(self):
        lines = metrics_jsonl(self._snapshot()).splitlines()
        rows = [json.loads(line) for line in lines]
        assert {r["name"] for r in rows} == {"svc.requests", "pool.depth", "svc.fill"}

    def test_prometheus_text_shape(self):
        text = prometheus_text(self._snapshot())
        assert "svc_requests 4" in text
        assert 'svc_fill_bucket{le="+Inf"} 1' in text
        assert "# TYPE svc_fill histogram" in text

    def test_summary_table(self):
        text = summary(self._snapshot())
        assert "svc.requests" in text
        assert summary(MetricsSnapshot()) == "(no metrics recorded)\n"

    def test_spans_jsonl(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("step", round=1):
            pass
        rows = [json.loads(line) for line in spans_jsonl(tracer.finished()).splitlines()]
        assert rows[0]["name"] == "step"
        assert rows[0]["attrs"] == {"round": 1}


# --------------------------------------------------------------------------- #
class TestBitIdentity:
    """Observability must never perturb tuning trajectories."""

    def test_service_enabled_vs_disabled(self):
        requests = _workload()
        plain = TuningService()
        plain_results = plain.tune(list(requests))

        obs = Observability(enabled=True, clock=FakeClock())
        observed = TuningService(obs=obs)
        observed_results = observed.tune(list(requests))

        for request, want, got in zip(requests, plain_results, observed_results):
            assert _trajectory(got) == _trajectory(want)
            assert got.best_config == want.best_config
            assert got.best_time == want.best_time
            if not got.from_cache:
                assert _trajectory(got) == _trajectory(request.tune_direct())
        assert observed.stats == plain.stats
        # ... and the instruments actually recorded the request path.
        snap = obs.snapshot()
        fill = snap.histograms["service.pack.fill_ratio"]
        assert fill.total > 0
        assert fill.bounds == FILL_RATIO_BOUNDS
        assert snap.counters["db.puts_total"] > 0

    def test_streaming_pool_enabled_vs_disabled(self):
        requests = _workload()
        plain = TuningWorkerPool(num_workers=2, streaming=True, use_processes=False)
        plain_results = plain.tune(list(requests))

        obs = Observability(enabled=True, clock=FakeClock())
        observed = TuningWorkerPool(
            num_workers=2, streaming=True, use_processes=False, obs=obs
        )
        observed_results = observed.tune(list(requests))

        for want, got in zip(plain_results, observed_results):
            assert _trajectory(got) == _trajectory(want)
            assert got.best_time == want.best_time
        assert observed.stats == plain.stats

    def test_enabled_obs_never_mutates_trajectories_across_reruns(self):
        # Two enabled runs on fresh services are byte-identical too: no
        # hidden global state accumulates inside the obs layer.
        requests = _workload()
        first = TuningService(obs=Observability()).tune(list(requests))
        second = TuningService(obs=Observability()).tune(list(requests))
        assert [_trajectory(r) for r in first] == [_trajectory(r) for r in second]


# --------------------------------------------------------------------------- #
class TestFleetTelemetry:
    def test_serial_fleet_snapshot_equals_service_totals(self):
        requests = _workload()
        obs = Observability()
        pool = TuningWorkerPool(
            num_workers=2, streaming=True, use_processes=False, obs=obs
        )
        pool.tune(list(requests))
        fleet = pool.fleet_snapshot().counters
        stats = pool.stats
        assert fleet["pool.requests"] == len(requests)
        assert fleet["service.tuning_runs"] == stats.tuning_runs
        assert fleet["service.measurements"] == stats.measurements
        assert fleet["service.database_hits"] == stats.database_hits

    def test_process_fleet_merge_equals_in_process_totals(self):
        # Worker processes ship their snapshots over the result stream; the
        # parent's merged fleet view must land on the totals the identical
        # serial run accumulates in-process.  (Only the deterministic
        # counters compare — latency histograms are wall-clock readings.)
        requests = [_request(A, seed=1), _request(B, seed=1),
                    _request(A, seed=2), _request(B, seed=2)]

        serial = TuningWorkerPool(
            num_workers=2, streaming=False, use_processes=False,
            obs=Observability(),
        )
        serial_results = serial.tune(list(requests))

        procs = TuningWorkerPool(
            num_workers=2, streaming=False, use_processes=True,
            allow_serial_fallback=True, obs=Observability(),
        )
        try:
            proc_results = procs.tune(list(requests))
        except (OSError, PermissionError, ImportError):
            pytest.skip("worker processes unavailable in this environment")
        if not procs.used_processes:
            pytest.skip("worker processes unavailable in this environment")

        for want, got in zip(serial_results, proc_results):
            assert _trajectory(got) == _trajectory(want)

        serial_counters = serial.fleet_snapshot().counters
        proc_counters = procs.fleet_snapshot().counters
        service_keys = {
            k for k in serial_counters if k.startswith(("service.", "pool."))
        }
        assert service_keys  # the fleet view is not empty
        for key in sorted(service_keys):
            assert proc_counters.get(key) == serial_counters[key], key

    def test_disabled_pool_fleet_snapshot_still_accounts(self):
        # Without obs the fleet view degrades to pure pool+service
        # accounting — never an error, never missing counters.
        pool = TuningWorkerPool(num_workers=2, streaming=True, use_processes=False)
        pool.tune(_workload())
        counters = pool.fleet_snapshot().counters
        assert counters["pool.requests"] == 4
        assert counters["service.tuning_runs"] == pool.stats.tuning_runs
