"""Tests for the RecordStore backend protocol behind TuningDatabase.

Covers the backend contract (append/scan/changes_since/snapshot/recover)
for both backends, the LogStore's append-only durability + compaction +
crash recovery (fault-injection property tests in the style of the
interrupted-save harness in ``test_tuning_database.py``), the format-1
header versioning, the deprecation shims, structured ``describe()``, and
the acceptance property that swapping backends changes no tuning
trajectory for the service or the streaming pool.
"""

import dataclasses
import json
import os
import random
import threading
import warnings

import pytest

from repro.conv import ConvParams
from repro.core.autotune import (
    JsonMapStore,
    LogStore,
    SearchSpace,
    TuningDatabase,
    TuningDatabaseError,
    TuningRecord,
)
from repro.core.autotune.store import FORMAT_VERSION
from repro.gpusim import V100
from repro.obs import MetricsRegistry, format_describe
from repro.service import TuningRequest, TuningService, TuningWorkerPool

LAYER = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)
SMALL = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)
THIRD = ConvParams.square(16, 32, 48, kernel=3, stride=1, padding=1)


def _record(params=LAYER, gpu="V100", algorithm="direct", time_seconds=1e-3, **kw):
    space = SearchSpace(params, V100, algorithm, pruned=True)
    config = space.random_configuration(random.Random(0))
    return TuningRecord(
        params=params,
        gpu=gpu,
        algorithm=algorithm,
        config=config,
        time_seconds=time_seconds,
        gflops=123.0,
        **kw,
    )


def _records(n, time_seconds=1e-3):
    """n records with distinct problem keys (distinct batch sizes)."""
    return [
        _record(params=LAYER.with_batch(i + 1), time_seconds=time_seconds)
        for i in range(n)
    ]


def _canonical(store_or_db):
    records = (
        store_or_db.scan()
        if hasattr(store_or_db, "scan")
        else store_or_db.records()
    )
    return sorted(
        (r.key(), r.conditions(), r.time_seconds, r.config.key(), r.budget)
        for r in records
    )


def _make_store(kind, tmp_path, **kw):
    if kind == "map":
        return JsonMapStore(path=tmp_path / "db.json", **kw)
    return LogStore(tmp_path / "db.log", **kw)


@pytest.mark.parametrize("kind", ["map", "log"])
class TestRecordStoreProtocol:
    def test_append_scan_len(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        record = _record()
        winner, effective = store.append(record)
        assert winner is record and effective
        assert len(store) == 1
        assert store.scan() == [record]
        store.close()

    def test_append_keep_better_is_effective_only_on_change(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        slow, fast = _record(time_seconds=2e-3), _record(time_seconds=1e-3)
        assert store.append(slow) == (slow, True)
        winner, effective = store.append(fast)
        assert winner is fast and effective
        # A losing record changes nothing and is not effective.
        assert store.append(slow) == (fast, False)
        assert len(store) == 1
        store.close()

    def test_budget_upgrade_is_effective(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        store.append(_record(time_seconds=1e-3, budget=10))
        winner, effective = store.append(_record(time_seconds=2e-3, budget=99))
        assert effective and winner.budget == 99
        assert winner.time_seconds == 1e-3  # faster record survived
        store.close()

    def test_serve_returns_published_bucket(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        record = _record()
        store.append(record)
        bucket = store.serve(record.key())
        assert bucket[record.conditions()] is record
        assert store.serve(("missing", "V100", "direct")) == {}
        store.close()

    def test_revision_and_changes_since(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        assert store.revision == 0
        a, b = _records(2)
        store.append(a)
        mark = store.revision
        assert mark == 1
        store.append(b)
        assert store.changes_since(mark) == [b]
        assert store.changes_since(0) == [a, b]
        assert store.changes_since(store.revision) == []
        store.close()

    def test_snapshot_recover_round_trip(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        for record in _records(5):
            store.append(record)
        before = _canonical(store)
        store.snapshot()
        store.close()
        fresh = _make_store(kind, tmp_path)
        fresh.recover()
        assert _canonical(fresh) == before
        # Recovery pins the change-log base: a stale replica checkpoint
        # over-delivers the whole map (safe), never misses changes.
        assert len(fresh.changes_since(0)) == 5
        fresh.close()

    def test_describe_is_json_native(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        store.append(_record())
        info = store.describe()
        assert info["kind"] == kind
        assert info["records"] == 1
        json.dumps(info)  # must be wire-serializable as-is
        store.close()


class TestLogStoreDurability:
    def test_appends_survive_reopen_without_snapshot(self, tmp_path):
        path = tmp_path / "db.log"
        store = LogStore(path)
        for record in _records(8):
            store.append(record)
        before = _canonical(store)
        revision = store.revision
        store.close()
        reopened = LogStore(path)
        assert _canonical(reopened) == before
        assert reopened.revision == revision
        reopened.close()

    def test_only_effective_appends_grow_the_log(self, tmp_path):
        path = tmp_path / "db.log"
        store = LogStore(path)
        store.append(_record(time_seconds=1e-3))
        size = os.path.getsize(path)
        store.append(_record(time_seconds=2e-3))  # loses: not logged
        assert os.path.getsize(path) == size
        store.close()

    def test_reopened_store_continues_appending(self, tmp_path):
        path = tmp_path / "db.log"
        store = LogStore(path)
        store.append(_record())
        store.close()
        reopened = LogStore(path)
        reopened.append(_record(params=SMALL))
        reopened.close()
        final = LogStore(path)
        assert len(final) == 2
        final.close()

    def test_closed_store_rejects_appends_but_serves(self, tmp_path):
        record = _record()
        store = LogStore(tmp_path / "db.log")
        store.append(record)
        store.close()
        store.close()  # idempotent
        assert store.serve(record.key())[record.conditions()] is record
        with pytest.raises(TuningDatabaseError, match="closed"):
            store.append(_record(params=SMALL))

    def test_compaction_triggers_on_dead_ratio(self, tmp_path):
        path = tmp_path / "db.log"
        store = LogStore(path, compact_min_entries=8, compact_dead_ratio=0.5)
        # Repeatedly improve the same 4 slots: the tail goes mostly dead.
        for round_index in range(10):
            for record in _records(4, time_seconds=1e-3 / (round_index + 1)):
                store.append(record)
        assert os.path.exists(store.snapshot_path)
        info = store.describe()
        # The live set never exceeds 4 records, so the reset log stays small.
        assert info["records"] == 4
        assert info["log_entries"] < 8
        before = _canonical(store)
        store.close()
        recovered = LogStore(path)
        assert _canonical(recovered) == before
        recovered.close()

    def test_no_compaction_without_dead_records(self, tmp_path):
        store = LogStore(tmp_path / "db.log", compact_min_entries=8)
        for record in _records(50):  # all distinct: nothing is dead
            store.append(record)
        assert not os.path.exists(store.snapshot_path)
        store.close()

    def test_explicit_snapshot_bounds_the_tail(self, tmp_path):
        path = tmp_path / "db.log"
        store = LogStore(path)
        for record in _records(20):
            store.append(record)
        store.snapshot()
        assert store.describe()["log_entries"] == 0
        store.append(_record(params=SMALL))
        store.close()
        # Recovery = snapshot fold (20) + tail replay (1).
        recovered = LogStore(path)
        assert len(recovered) == 21
        recovered.close()

    def test_fsync_appends_mode(self, tmp_path):
        store = LogStore(tmp_path / "db.log", fsync_appends=True)
        for record in _records(3):
            store.append(record)
        assert len(store) == 3
        store.close()

    def test_bad_compact_ratio_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="compact_dead_ratio"):
            LogStore(tmp_path / "db.log", compact_dead_ratio=0.0)

    def test_concurrent_appends_with_lockfree_lookups(self, tmp_path):
        db = TuningDatabase(store=LogStore(tmp_path / "db.log"))
        errors = []

        def writer(offset):
            try:
                for i in range(50):
                    db.put(_record(params=LAYER.with_batch(offset * 50 + i + 1)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                for _ in range(100):
                    db.lookup(LAYER, V100, "direct")
                    db.records()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(db) == 200
        db.close()


class TestLogStoreCrashRecovery:
    """Fault-injection property tests (satellite: kill mid-append,
    mid-compaction, and between snapshot write and log reset; the recovered
    store must equal the pre-crash effective record set)."""

    def test_truncated_tail_line_loses_only_the_inflight_put(self, tmp_path):
        # Property: cutting the log anywhere inside its final line recovers
        # exactly the record set *before* the interrupted append.
        path = tmp_path / "db.log"
        store = LogStore(path)
        for record in _records(6):
            store.append(record)
        store.close()
        full = path.read_bytes()
        last_line_start = full.rstrip(b"\n").rfind(b"\n") + 1
        reference = LogStore(tmp_path / "ref.log")
        for record in _records(5):
            reference.append(record)
        expected_minus_last = _canonical(reference)
        reference.close()
        # Every cut strictly inside the final record line (cutting only the
        # trailing newline leaves the line complete, so it still replays).
        for cut in range(last_line_start, len(full) - 1):
            path.write_bytes(full[:cut])
            recovered = LogStore(path)
            assert _canonical(recovered) == expected_minus_last, f"cut at {cut}"
            recovered.close()
            path.write_bytes(full)

    def test_kill_mid_append_then_continue(self, tmp_path):
        # After a truncated-append recovery the store keeps working: new
        # appends land after the tolerated partial line is gone.
        path = tmp_path / "db.log"
        store = LogStore(path)
        for record in _records(3):
            store.append(record)
        store.close()
        with open(path, "ab") as fh:
            fh.write(b'{"rev": 99, "record": {"par')  # torn final write
        recovered = LogStore(path)
        assert len(recovered) == 3
        recovered.append(_record(params=SMALL))
        recovered.close()
        final = LogStore(path)
        assert len(final) == 4
        final.close()

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "db.log"
        store = LogStore(path)
        for record in _records(3):
            store.append(record)
        store.close()
        lines = path.read_text().splitlines(keepends=True)
        lines[2] = '{"rev": torn\n'  # not the last line -> corruption
        path.write_text("".join(lines))
        with pytest.raises(TuningDatabaseError, match="not merely truncated"):
            LogStore(path)

    def test_crash_during_snapshot_write_preserves_everything(
        self, tmp_path, monkeypatch
    ):
        # Simulated crash: the snapshot dump dies halfway through writing
        # (same harness as TestAtomicSave in test_tuning_database.py).
        path = tmp_path / "db.log"
        store = LogStore(path)
        for record in _records(6):
            store.append(record)
        before = _canonical(store)

        def exploding_dump(payload, fh, **kwargs):
            fh.write('{"format": 1, "kind": "log-snapshot", "records": [tor')
            raise OSError("disk full")

        monkeypatch.setattr(json, "dump", exploding_dump)
        with pytest.raises(OSError):
            store.snapshot()
        monkeypatch.undo()
        # No snapshot was installed, no temp litter, the log is intact, and
        # the store both keeps serving and recovers to the pre-crash set.
        assert not os.path.exists(store.snapshot_path)
        assert sorted(os.listdir(tmp_path)) == ["db.log"]
        assert _canonical(store) == before
        store.close()
        recovered = LogStore(path)
        assert _canonical(recovered) == before
        recovered.close()

    def test_crash_between_snapshot_and_log_reset(self, tmp_path, monkeypatch):
        # The narrow window: the new snapshot landed but the log was never
        # reset.  Replaying the stale log over the snapshot is pure
        # over-delivery, so recovery is still exact.
        path = tmp_path / "db.log"
        store = LogStore(path)
        for record in _records(6):
            store.append(record)
        before = _canonical(store)
        real_replace = os.replace

        def replace_snapshot_only(src, dst):
            if os.fspath(dst).endswith(".snap"):
                return real_replace(src, dst)
            raise OSError("power cut before log reset")

        monkeypatch.setattr(os, "replace", replace_snapshot_only)
        with pytest.raises(OSError):
            store.snapshot()
        monkeypatch.undo()
        assert os.path.exists(store.snapshot_path)  # new snapshot landed
        store.close()
        recovered = LogStore(path)
        assert _canonical(recovered) == before
        # The store remains fully usable after the interrupted compaction.
        recovered.append(_record(params=SMALL))
        assert len(recovered) == 7
        recovered.close()

    def test_crashed_compaction_keeps_appends_on_old_log(self, tmp_path, monkeypatch):
        # When the log reset fails *in process* (no kill), the handle is
        # reopened on the old log and later appends keep extending it — no
        # write lands between a closed handle and a fresh one.
        path = tmp_path / "db.log"
        store = LogStore(path)
        for record in _records(6):
            store.append(record)
        real_replace = os.replace

        def replace_snapshot_only(src, dst):
            if os.fspath(dst).endswith(".snap"):
                return real_replace(src, dst)
            raise OSError("transient")

        monkeypatch.setattr(os, "replace", replace_snapshot_only)
        with pytest.raises(OSError):
            store.snapshot()
        monkeypatch.undo()
        store.append(_record(params=SMALL))
        before = _canonical(store)
        store.close()
        recovered = LogStore(path)
        assert _canonical(recovered) == before
        recovered.close()

    def test_zero_byte_log_recovers_empty(self, tmp_path):
        path = tmp_path / "db.log"
        path.write_bytes(b"")
        store = LogStore(path)
        assert len(store) == 0
        store.append(_record())
        store.close()
        assert len(LogStore(path)) == 1


class TestFormatVersioning:
    def test_map_load_names_newer_format(self, tmp_path):
        path = tmp_path / "db.json"
        newer = FORMAT_VERSION + 1
        path.write_text(json.dumps({"format": newer, "kind": "map", "records": []}))
        with pytest.raises(TuningDatabaseError) as excinfo:
            TuningDatabase.load(path)
        assert f"format {newer}" in str(excinfo.value)

    def test_log_header_names_newer_format(self, tmp_path):
        path = tmp_path / "db.log"
        newer = FORMAT_VERSION + 1
        path.write_text(json.dumps({"format": newer, "kind": "log"}) + "\n")
        with pytest.raises(TuningDatabaseError) as excinfo:
            LogStore(path)
        assert f"format {newer}" in str(excinfo.value)

    def test_snapshot_names_newer_format(self, tmp_path):
        path = tmp_path / "db.log"
        newer = FORMAT_VERSION + 1
        (tmp_path / "db.log.snap").write_text(
            json.dumps({"format": newer, "kind": "log-snapshot", "records": []})
        )
        with pytest.raises(TuningDatabaseError) as excinfo:
            LogStore(path)
        assert f"format {newer}" in str(excinfo.value)

    def test_map_files_carry_format_header(self, tmp_path):
        path = tmp_path / "db.json"
        TuningDatabase([_record()]).save(path)
        payload = json.loads(path.read_text())
        assert payload["format"] == FORMAT_VERSION
        assert payload["kind"] == "map"
        assert payload["version"] == FORMAT_VERSION  # legacy readers

    def test_legacy_map_file_without_format_still_loads(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(
            json.dumps({"version": 1, "records": [_record().to_dict()]})
        )
        assert len(TuningDatabase.load(path)) == 1

    def test_load_rejects_log_file_with_guidance(self, tmp_path):
        # A header-only log parses as one JSON object; the kind check
        # steers the caller toward the right entry point.
        header_only = tmp_path / "header-only.log"
        LogStore(header_only).close()
        with pytest.raises(TuningDatabaseError, match="TuningDatabase.open"):
            TuningDatabase.load(header_only)
        # A log with records is multi-line JSON: json.load fails first,
        # and the error already hints at the append-only log case.
        path = tmp_path / "db.log"
        store = LogStore(path)
        store.append(_record())
        store.close()
        with pytest.raises(TuningDatabaseError, match="append-only"):
            TuningDatabase.load(path)

    def test_open_sniffs_both_backends(self, tmp_path):
        record = _record()
        map_path = tmp_path / "db.json"
        TuningDatabase([record]).save(map_path)
        opened = TuningDatabase.open(map_path)
        assert isinstance(opened.store, JsonMapStore)
        assert len(opened) == 1

        log_path = tmp_path / "db.log"
        db = TuningDatabase(store=LogStore(log_path))
        db.put(record)
        db.close()
        opened = TuningDatabase.open(log_path)
        assert isinstance(opened.store, LogStore)
        assert len(opened) == 1
        assert opened.lookup(record.params, record.gpu, record.algorithm) == record
        opened.close()


class TestRemovedShims:
    """The PR 8 ``add_result``/``merge`` DeprecationWarning shims served
    their one release and are gone; the migrated spellings are the API."""

    def test_shims_are_gone(self):
        db = TuningDatabase()
        assert not hasattr(db, "add_result")
        assert not hasattr(db, "merge")

    def test_migrated_write_path_is_warning_free(self):
        record = _record()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            db = TuningDatabase()
            db.put(TuningRecord.from_result(record.as_result(), budget=7))
            db.apply([_record(params=SMALL)])
        assert len(db) == 2

    def test_from_result_builds_equivalent_record(self):
        record = _record(budget=0)
        result = record.as_result()
        built = TuningRecord.from_result(result, budget=9, noise=0.5, noise_seed=3)
        assert built.config == record.config
        assert built.time_seconds == record.time_seconds
        assert built.budget == 9
        assert built.conditions() == (0.5, 3)


class TestStructuredDescribe:
    def test_database_describe_is_dict(self, tmp_path):
        db = TuningDatabase(store=LogStore(tmp_path / "db.log"))
        db.put(_record())
        db.lookup(LAYER, V100, "direct")
        db.lookup(SMALL, V100, "direct")
        info = db.describe()
        assert info["kind"] == "TuningDatabase"
        assert info["records"] == 1
        assert (info["hits"], info["misses"]) == (1, 1)
        assert info["store"]["kind"] == "log"
        json.dumps(info)  # wire-ready
        db.close()

    def test_service_describe_is_dict(self):
        service = TuningService()
        service.tune([TuningRequest(SMALL, V100, max_measurements=8, seed=1)])
        info = service.describe()
        assert info["kind"] == "TuningService"
        assert info["active"] == 0
        assert info["stats"]["requests"] == 1
        assert info["database"]["kind"] == "TuningDatabase"
        json.dumps(info)

    def test_format_describe_renders_human_line(self):
        db = TuningDatabase([_record()])
        text = format_describe(db.describe())
        assert text.startswith("TuningDatabase[")
        assert "records=1" in text
        assert "map[" in text  # nested backend describe

    def test_format_describe_non_dict_falls_back(self):
        assert format_describe(7) == "7"


class TestStoreMetrics:
    def test_db_store_metric_names(self, tmp_path):
        registry = MetricsRegistry()
        db = TuningDatabase(store=LogStore(tmp_path / "db.log"))
        db.attach_metrics(registry.scope("db"))
        slow, fast = _record(time_seconds=2e-3), _record(time_seconds=1e-3)
        db.put(slow)
        db.put(fast)
        db.put(slow)  # loses
        counters = registry.snapshot().counters
        gauges = registry.snapshot().gauges
        assert counters["db.puts_total"] == 3
        assert counters["db.puts_effective"] == 2
        assert counters["db.store.appends_total"] == 3
        assert counters["db.store.appends_effective"] == 2
        assert counters["db.store.log_appends"] == 2
        assert gauges["db.store.live_records"] == 1
        assert gauges["db.store.log_entries"] == 2
        assert gauges["db.store.dead_entries"] == 1
        db.close()

    def test_compaction_and_recovery_metrics(self, tmp_path):
        registry = MetricsRegistry()
        store = LogStore(
            tmp_path / "db.log", compact_min_entries=4, compact_dead_ratio=0.5
        )
        store.attach_metrics(registry.scope("db.store"))
        for round_index in range(8):
            store.append(_record(time_seconds=1e-3 / (round_index + 1)))
        counters = registry.snapshot().counters
        assert counters["db.store.compactions"] >= 1
        assert counters["db.store.compaction_records"] >= 1
        store.recover()
        counters = registry.snapshot().counters
        assert counters["db.store.recoveries"] == 1
        assert counters["db.store.recovered_records"] == 1
        store.close()


class TestBackendBitIdentity:
    """Acceptance: swapping backends changes no tuning trajectory."""

    def _workload(self):
        return [
            TuningRequest(SMALL, V100, max_measurements=10, seed=1),
            TuningRequest(LAYER, V100, max_measurements=10, seed=2),
            TuningRequest(SMALL, V100, max_measurements=10, seed=1),  # duplicate
            TuningRequest(THIRD, V100, max_measurements=10, seed=3),
        ]

    @staticmethod
    def _trajectories(results):
        return [
            [(t.config.key(), t.time_seconds) for t in result.trials]
            for result in results
        ]

    def test_service_trajectories_identical_across_backends(self, tmp_path):
        map_service = TuningService(database=TuningDatabase())
        map_results = map_service.tune(self._workload())
        log_db = TuningDatabase(store=LogStore(tmp_path / "svc.log"))
        log_service = TuningService(database=log_db)
        log_results = log_service.tune(self._workload())
        assert self._trajectories(map_results) == self._trajectories(log_results)
        assert map_service.stats.measurements == log_service.stats.measurements
        assert _canonical(map_service.database) == _canonical(log_service.database)
        log_db.close()

    def test_streaming_pool_trajectories_identical_across_backends(self, tmp_path):
        workload = self._workload() * 2
        results = {}
        databases = {}
        for backend in ("map", "log"):
            pool = TuningWorkerPool(
                num_workers=2,
                use_processes=False,
                streaming=True,
                store_dir=(
                    os.path.join(tmp_path, "shards") if backend == "log" else None
                ),
            )
            exchange = TuningDatabase()
            results[backend] = pool.tune(workload, database=exchange)
            databases[backend] = exchange
        assert self._trajectories(results["map"]) == self._trajectories(
            results["log"]
        )
        assert _canonical(databases["map"]) == _canonical(databases["log"])
        # The durable run left per-shard logs behind, compacted at drain
        # (drain_store snapshots each store so a restart replays a short
        # tail instead of the whole workload's appends).
        assert sorted(os.listdir(os.path.join(tmp_path, "shards"))) == [
            "shard-0.log",
            "shard-0.log.snap",
            "shard-1.log",
            "shard-1.log.snap",
        ]


class TestPoolDurability:
    def test_shard_runner_recovers_from_previous_log(self, tmp_path):
        from repro.service.pool import _ShardRunner

        path = os.path.join(tmp_path, "shard-0.log")
        first = _ShardRunner([], store_path=path)
        planted = _record()
        first.service.database.put(planted)
        first.service.database.close()
        # A restarted shard starts from its log, not from empty.
        second = _ShardRunner([], store_path=path)
        assert second.service.database.records() == [planted]
        # Recovered records predate the streaming checkpoint: they are not
        # re-broadcast as if this incarnation had just tuned them.
        assert second.take_new_records() == []
        second.service.database.close()

    def test_parent_recovers_dead_shard_log(self, tmp_path):
        pool = TuningWorkerPool(
            num_workers=2, use_processes=False, store_dir=str(tmp_path)
        )
        pool._reset_accounting(streaming=True)
        # Simulate a worker that persisted two records and died unstreamed.
        dead_store = LogStore(pool._shard_store_path(1))
        for record in _records(2):
            dead_store.append(record)
        dead_store.close()
        exchange = TuningDatabase()
        assert pool._recover_shard_store(1, exchange) == 2
        assert len(exchange) == 2
        assert pool.stats.records_recovered == 2

    def test_parent_recovery_tolerates_missing_and_corrupt_logs(self, tmp_path):
        pool = TuningWorkerPool(
            num_workers=2, use_processes=False, store_dir=str(tmp_path)
        )
        pool._reset_accounting(streaming=True)
        exchange = TuningDatabase()
        # Missing log: the worker died before its first put.
        assert pool._recover_shard_store(0, exchange) == 0
        # Corrupt log: counted as poisoned, never crashes the parent.
        with open(pool._shard_store_path(1), "w", encoding="utf-8") as fh:
            fh.write('{"format": 1, "kind": "log"}\n{"rev": torn\n{"rev": 2}\n')
        assert pool._recover_shard_store(1, exchange) == 0
        assert pool.stats.poisoned_envelopes == 1
        assert pool.stats.records_recovered == 0


class TestFacade:
    def test_put_and_lookup_identity_with_log_backend(self, tmp_path):
        db = TuningDatabase(store=LogStore(tmp_path / "db.log"))
        fast, slow = _record(time_seconds=1e-3), _record(time_seconds=2e-3)
        assert db.put(fast) is fast
        assert db.put(slow) is fast
        assert db.lookup(LAYER, V100, "direct") is fast
        db.close()

    def test_store_and_path_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            TuningDatabase(
                path=tmp_path / "a.json", store=JsonMapStore(path=tmp_path / "b.json")
            )

    def test_save_without_path_snapshots_the_backend(self, tmp_path):
        path = tmp_path / "db.log"
        db = TuningDatabase(store=LogStore(path))
        db.put(_record())
        assert db.save() == str(path) + ".snap"
        db.close()

    def test_save_with_explicit_path_exports_portable_map(self, tmp_path):
        db = TuningDatabase(store=LogStore(tmp_path / "db.log"))
        db.put(_record())
        exported = db.save(tmp_path / "export.json")
        loaded = TuningDatabase.load(exported)
        assert _canonical(loaded) == _canonical(db)
        db.close()

    def test_engine_results_flow_through_store(self, tmp_path):
        from repro.core.autotune import AutoTuningEngine

        db = TuningDatabase(store=LogStore(tmp_path / "db.log"))
        result = AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=8, seed=1, database=db
        ).tune()
        assert not result.from_cache
        db.close()
        # The tuned record survives the process: a fresh engine on a
        # recovered database is served from cache with zero measurements.
        recovered = TuningDatabase(store=LogStore(tmp_path / "db.log"))
        again = AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=8, seed=1, database=recovered
        ).tune()
        assert again.from_cache
        recovered.close()
