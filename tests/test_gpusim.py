"""Tests for the GPU memory-hierarchy simulator."""

import pytest

from repro.conv import ConvParams, Layout
from repro.core.dataflow import OutputTile, optimal_tile_direct
from repro.gpusim import (
    GFX906,
    GTX_1080TI,
    KNOWN_GPUS,
    TITAN_X,
    V100,
    CudnnLibrary,
    GPUExecutor,
    GPUSpec,
    KernelProfile,
    direct_dataflow_profile,
    gemm_traffic,
    get_gpu,
    im2col_profile,
    occupancy,
    winograd_dataflow_profile,
)


class TestSpecs:
    def test_known_gpus(self):
        assert set(KNOWN_GPUS) == {"1080Ti", "V100", "TitanX", "gfx906"}

    def test_get_gpu_case_insensitive(self):
        assert get_gpu("v100") is V100
        assert get_gpu("GFX906") is GFX906

    def test_get_gpu_unknown(self):
        with pytest.raises(KeyError):
            get_gpu("a100")

    def test_shared_mem_elements(self):
        assert V100.shared_mem_elements_per_sm == 96 * 1024 // 4

    def test_ridge_point_ordering(self):
        # V100 has both more bandwidth and more FLOPs than Titan X.
        assert V100.peak_flops > TITAN_X.peak_flops
        assert V100.dram_bandwidth > TITAN_X.dram_bandwidth

    def test_describe(self):
        assert "V100" in V100.describe()

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", num_sms=0, shared_mem_per_sm=1, dram_bandwidth=1, peak_flops=1)


class TestKernelProfiles:
    def test_direct_profile_fields(self, layer_params):
        tile = OutputTile(8, 8, 8)
        prof = direct_dataflow_profile(layer_params, tile)
        assert prof.flops == layer_params.flops
        assert prof.dram_bytes > 0
        assert prof.num_blocks == 7 * 7 * 16
        assert 0 < prof.coalescing <= 1

    def test_direct_profile_layout_effect(self, layer_params):
        tile = OutputTile(8, 8, 8)
        chw = direct_dataflow_profile(layer_params, tile, layout=Layout.CHW)
        cwh = direct_dataflow_profile(layer_params, tile, layout=Layout.CWH)
        assert cwh.coalescing < chw.coalescing

    def test_winograd_profile(self, layer_params):
        prof = winograd_dataflow_profile(layer_params, OutputTile(8, 8, 4), e=2)
        assert prof.flops > 0
        assert prof.name == "winograd_dataflow_f2"

    def test_im2col_profile_traffic_exceeds_minimum(self, layer_params):
        prof = im2col_profile(layer_params)
        minimum = (
            layer_params.input_elements
            + layer_params.kernel_elements
            + layer_params.output_elements
        ) * 4
        assert prof.dram_bytes > minimum

    def test_gemm_traffic(self):
        # 64x64x64 with 32x32 tiles: A read twice, B read twice, C written once.
        t = gemm_traffic(64, 64, 64, 32, 32, dtype_size=4)
        assert t == (64 * 64 * 2 + 64 * 64 * 2 + 64 * 64) * 4

    def test_gemm_traffic_invalid(self):
        with pytest.raises(ValueError):
            gemm_traffic(0, 1, 1, 1, 1)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            KernelProfile("x", flops=-1, dram_bytes=0, smem_per_block=0, threads_per_block=32, num_blocks=1)
        with pytest.raises(ValueError):
            KernelProfile("x", flops=1, dram_bytes=0, smem_per_block=0, threads_per_block=0, num_blocks=1)
        with pytest.raises(ValueError):
            KernelProfile("x", 1, 1, 0, 32, 1, coalescing=1.5)

    def test_arithmetic_intensity(self):
        prof = KernelProfile("x", flops=100, dram_bytes=50, smem_per_block=0, threads_per_block=32, num_blocks=1)
        assert prof.arithmetic_intensity == 2.0


class TestExecutor:
    def _profile(self, **kw):
        base = dict(
            name="k",
            flops=1e9,
            dram_bytes=1e7,
            smem_per_block=32 * 1024,
            threads_per_block=256,
            num_blocks=1000,
        )
        base.update(kw)
        return KernelProfile(**base)

    def test_occupancy_in_range(self):
        occ = occupancy(self._profile(), V100)
        assert 0 < occ <= 1

    def test_occupancy_rejects_oversized_smem(self):
        with pytest.raises(ValueError):
            occupancy(self._profile(smem_per_block=200 * 1024), V100)

    def test_occupancy_rejects_too_many_threads(self):
        with pytest.raises(ValueError):
            occupancy(self._profile(threads_per_block=2048), V100)

    def test_few_blocks_lower_occupancy(self):
        few = occupancy(self._profile(num_blocks=4), V100)
        many = occupancy(self._profile(num_blocks=4000), V100)
        assert few < many

    def test_run_returns_consistent_time(self):
        ex = GPUExecutor(V100, noise=0.0)
        res = ex.run(self._profile())
        assert res.time_seconds >= max(res.compute_time, res.memory_time)
        assert res.achieved_gflops > 0
        assert res.bound in ("memory", "compute")

    def test_memory_bound_detection(self):
        ex = GPUExecutor(V100, noise=0.0)
        res = ex.run(self._profile(flops=1e6, dram_bytes=1e9))
        assert res.bound == "memory"

    def test_compute_bound_detection(self):
        ex = GPUExecutor(V100, noise=0.0)
        res = ex.run(self._profile(flops=1e12, dram_bytes=1e6))
        assert res.bound == "compute"

    def test_deterministic_noise(self):
        ex1 = GPUExecutor(V100, noise=0.05, seed=7)
        ex2 = GPUExecutor(V100, noise=0.05, seed=7)
        p = self._profile()
        assert ex1.run(p).time_seconds == ex2.run(p).time_seconds

    def test_noise_bounded(self):
        p = self._profile()
        base = GPUExecutor(V100, noise=0.0).run(p).time_seconds
        noisy = GPUExecutor(V100, noise=0.1, seed=3).run(p).time_seconds
        assert abs(noisy - base) / base <= 0.1 + 1e-9

    def test_faster_gpu_is_faster(self, layer_params):
        tile = optimal_tile_direct(layer_params, 12288)
        prof = direct_dataflow_profile(layer_params, tile)
        t_v100 = GPUExecutor(V100, noise=0).run(prof).time_seconds
        t_titan = GPUExecutor(TITAN_X, noise=0).run(prof).time_seconds
        assert t_v100 < t_titan

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            GPUExecutor(V100, noise=0.9)

    def test_describe(self):
        res = GPUExecutor(V100, noise=0).run(self._profile())
        assert "V100" in res.describe()


class TestCudnnLibrary:
    def test_direct_always_available(self, strided_params):
        lib = CudnnLibrary(GTX_1080TI)
        choice = lib.run_direct(strided_params)
        assert choice.algorithm == "im2col_gemm"
        assert choice.time_seconds > 0

    def test_winograd_available_for_3x3(self, layer_params):
        lib = CudnnLibrary(GTX_1080TI)
        assert lib.run_winograd(layer_params).algorithm == "winograd"

    def test_winograd_unavailable_for_strided(self, strided_params):
        lib = CudnnLibrary(GTX_1080TI)
        with pytest.raises(ValueError):
            lib.run_winograd(strided_params)

    def test_best_never_slower_than_direct(self, layer_params):
        lib = CudnnLibrary(GTX_1080TI)
        assert lib.run_best(layer_params).time_seconds <= lib.run_direct(layer_params).time_seconds

    def test_deterministic(self, layer_params):
        a = CudnnLibrary(V100).run_best(layer_params).time_seconds
        b = CudnnLibrary(V100).run_best(layer_params).time_seconds
        assert a == b

    def test_dataflow_beats_cudnn_on_large_stride1_conv(self):
        """The headline comparison of Figure 9: for a large stride-1 3x3 layer
        the I/O-optimal dataflow outperforms the library's direct path."""
        p = ConvParams.square(112, 256, 128, kernel=3, stride=1, padding=1)
        spec = GTX_1080TI
        lib = CudnnLibrary(spec)
        tile = optimal_tile_direct(p, spec.shared_mem_per_sm // spec.dtype_size // 2)
        ours = GPUExecutor(spec).run(direct_dataflow_profile(p, tile)).time_seconds
        assert lib.run_direct(p).time_seconds > ours
