"""Tests for repro.conv.tensor (shapes, params, layouts, divisors)."""

import dataclasses

import pytest

from repro.conv import ConvParams, Layout, divisors, output_extent


class TestOutputExtent:
    def test_basic(self):
        assert output_extent(5, 3, 1, 0) == 3

    def test_with_padding(self):
        assert output_extent(5, 3, 1, 1) == 5

    def test_with_stride(self):
        assert output_extent(7, 3, 2, 0) == 3

    def test_stride_and_padding(self):
        assert output_extent(224, 7, 2, 3) == 112

    def test_kernel_equals_input(self):
        assert output_extent(3, 3, 1, 0) == 1

    def test_rejects_nonpositive_result(self):
        with pytest.raises(ValueError):
            output_extent(2, 3, 1, 0)

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            output_extent(5, 3, 0, 0)

    def test_rejects_negative_padding(self):
        with pytest.raises(ValueError):
            output_extent(5, 3, 1, -1)


class TestConvParams:
    def test_output_shape(self):
        p = ConvParams.square(14, 256, 128, kernel=3, stride=1, padding=1)
        assert p.output_shape == (1, 128, 14, 14)

    def test_input_kernel_shape(self):
        p = ConvParams.square(14, 16, 8, kernel=3)
        assert p.input_shape == (1, 16, 14, 14)
        assert p.kernel_shape == (8, 16, 3, 3)

    def test_macs_and_flops(self):
        p = ConvParams.square(4, 2, 3, kernel=3, stride=1)
        # out 2x2, macs = 2*2*3 outputs * (3*3*2)
        assert p.macs == 2 * 2 * 3 * 18
        assert p.flops == 2 * p.macs

    def test_reuse_factor_stride1(self):
        p = ConvParams.square(14, 1, 1, kernel=3, stride=1)
        assert p.reuse_factor == pytest.approx(9.0)

    def test_reuse_factor_stride2(self):
        p = ConvParams.square(14, 1, 1, kernel=3, stride=2)
        assert p.reuse_factor == pytest.approx(2.25)

    def test_element_counts(self):
        p = ConvParams.square(8, 3, 5, kernel=3, padding=1, batch=2)
        assert p.input_elements == 2 * 3 * 8 * 8
        assert p.kernel_elements == 5 * 3 * 9
        assert p.output_elements == 2 * 5 * 8 * 8

    def test_winograd_compatible(self):
        assert ConvParams.square(8, 3, 4, kernel=3, stride=1).winograd_compatible()
        assert not ConvParams.square(8, 3, 4, kernel=3, stride=2).winograd_compatible()
        assert not ConvParams(8, 8, 3, 4, ker_height=3, ker_width=5).winograd_compatible()

    def test_with_batch(self):
        p = ConvParams.square(8, 3, 4).with_batch(32)
        assert p.batch == 32
        assert p.output_elements == 32 * 4 * 6 * 6

    def test_with_layout(self):
        p = ConvParams.square(8, 3, 4).with_layout("HWC")
        assert p.layout is Layout.HWC

    def test_with_padding(self):
        p = ConvParams.square(8, 3, 4, kernel=3).with_padding(1)
        assert p.out_height == 8

    def test_layout_coercion_from_string(self):
        p = ConvParams.square(8, 3, 4, layout="CWH")
        assert p.layout is Layout.CWH

    def test_frozen(self):
        p = ConvParams.square(8, 3, 4)
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.in_height = 10  # reprolint: disable=REPRO302 - asserts frozenness

    def test_describe_mentions_shape(self):
        text = ConvParams.square(8, 3, 4).describe()
        assert "Cin=3" in text and "Cout=4" in text

    @pytest.mark.parametrize("field", ["in_height", "in_channels", "out_channels", "stride", "batch"])
    def test_rejects_nonpositive(self, field):
        kwargs = {"in_height": 8, "in_width": 8, "in_channels": 3, "out_channels": 4}
        kwargs[field] = 0
        with pytest.raises(ValueError):
            ConvParams(**kwargs)

    def test_rejects_kernel_larger_than_input(self):
        with pytest.raises(ValueError):
            ConvParams.square(3, 3, 4, kernel=5)

    def test_kernel_fits_with_padding(self):
        p = ConvParams.square(3, 3, 4, kernel=5, padding=1)
        assert p.out_height == 1

    def test_rejects_negative_padding(self):
        with pytest.raises(ValueError):
            ConvParams.square(8, 3, 4, padding=-1)


class TestLayout:
    def test_all_returns_three(self):
        assert len(Layout.all()) == 3

    def test_value_roundtrip(self):
        for layout in Layout.all():
            assert Layout(layout.value) is layout


class TestDivisors:
    def test_divisors_of_12(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_divisors_of_prime(self):
        assert divisors(13) == (1, 13)

    def test_divisors_of_one(self):
        assert divisors(1) == (1,)

    def test_divisors_square(self):
        assert divisors(36) == (1, 2, 3, 4, 6, 9, 12, 18, 36)

    def test_divisors_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            divisors(0)

    def test_all_divide(self):
        n = 360
        assert all(n % d == 0 for d in divisors(n))
