"""Tests for the I/O lower-bound theory (Section 4)."""

import math

import pytest

from repro.conv import ConvParams
from repro.core.bounds import (
    CompositeBound,
    DirectConvBound,
    MatmulBound,
    StepGeneration,
    WinogradBound,
    direct_conv_io_lower_bound,
    direct_conv_io_lower_bound_asymptotic,
    direct_conv_t_upper,
    direct_conv_vertex_count,
    matmul_io_lower_bound,
    matmul_io_lower_bound_asymptotic,
    matmul_vertex_count,
    nested_generation_value,
    winograd_io_lower_bound,
    winograd_io_lower_bound_asymptotic,
    winograd_t_upper,
    winograd_vertex_count,
)
from repro.core.bounds.generation import empirical_generation
from repro.pebble import direct_conv_dag


class TestStepGeneration:
    def test_phi_at_zero(self):
        step = StepGeneration("s", phi=lambda h: 2 * h, psi=lambda h: h)
        assert step.phi_at(0) == 0.0
        assert step.phi_at(3) == 6.0

    def test_negative_budget_rejected(self):
        step = StepGeneration("s", phi=lambda h: h, psi=lambda h: h)
        with pytest.raises(ValueError):
            step.phi_at(-1)


class TestCompositeBound:
    def _linear_steps(self):
        return [
            StepGeneration("a", phi=lambda h: 2 * h, psi=lambda h: h),
            StepGeneration("b", phi=lambda h: 3 * h, psi=lambda h: 0),
        ]

    def test_nested_value(self):
        steps = self._linear_steps()
        # phi1(k1) + phi2(k2 + psi1(k1)) = 2k1 + 3(k2 + k1)
        assert nested_generation_value(steps, [4, 6]) == pytest.approx(2 * 4 + 3 * (6 + 4))

    def test_t_of_s_linear_case(self):
        # max over k1+k2<=S of 2k1 + 3k2 + 3k1 = max(5k1 + 3k2) = 5S at k1=S.
        bound = CompositeBound(steps=self._linear_steps(), num_vertices=1000)
        assert bound.t_of_s(10) == pytest.approx(10 + 50, rel=0.02)

    def test_io_lower_bound_positive(self):
        bound = CompositeBound(steps=self._linear_steps(), num_vertices=10_000)
        assert bound.io_lower_bound(8) > 0

    def test_io_lower_bound_clipped_at_zero(self):
        bound = CompositeBound(steps=self._linear_steps(), num_vertices=5)
        assert bound.io_lower_bound(100) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            CompositeBound(steps=[], num_vertices=10)
        with pytest.raises(ValueError):
            CompositeBound(steps=self._linear_steps(), num_vertices=0)
        bound = CompositeBound(steps=self._linear_steps(), num_vertices=10)
        with pytest.raises(ValueError):
            bound.t_of_s(0)
        with pytest.raises(ValueError):
            bound.io_lower_bound(0)

    def test_split_length_mismatch(self):
        with pytest.raises(ValueError):
            nested_generation_value(self._linear_steps(), [1.0])

    def test_describe(self):
        bound = CompositeBound(steps=self._linear_steps(), num_vertices=10_000, name="toy")
        assert "toy" in bound.describe(16)


class TestDirectConvBound:
    def test_vertex_count_formula(self, tiny_params):
        k = tiny_params.ker_height * tiny_params.ker_width * tiny_params.in_channels
        m = tiny_params.out_height * tiny_params.out_width * tiny_params.out_channels
        assert direct_conv_vertex_count(tiny_params) == (2 * k - 1) * m

    def test_vertex_count_matches_dag(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        assert direct_conv_vertex_count(tiny_params) == len(dag.internal_and_output_vertices())

    def test_vertex_count_scales_with_batch(self, layer_params):
        assert direct_conv_vertex_count(layer_params.with_batch(4)) == 4 * direct_conv_vertex_count(layer_params)

    def test_t_upper_closed_form(self, layer_params):
        s = 512.0
        r = layer_params.reuse_factor
        assert direct_conv_t_upper(layer_params, s) == pytest.approx(4 * s * math.sqrt(r * s) + s - 1)

    def test_bound_decreases_with_memory(self, layer_params):
        q_small = direct_conv_io_lower_bound(layer_params, 1024)
        q_large = direct_conv_io_lower_bound(layer_params, 16384)
        assert q_large < q_small

    def test_bound_scales_roughly_with_inverse_sqrt_s(self, layer_params):
        q1 = direct_conv_io_lower_bound_asymptotic(layer_params, 1024)
        q2 = direct_conv_io_lower_bound_asymptotic(layer_params, 4096)
        assert q1 / q2 == pytest.approx(2.0, rel=1e-6)

    def test_precise_close_to_asymptotic(self, layer_params):
        s = 12288
        precise = direct_conv_io_lower_bound(layer_params, s)
        asym = direct_conv_io_lower_bound_asymptotic(layer_params, s)
        assert precise == pytest.approx(asym, rel=0.2)

    def test_numeric_composite_matches_closed_form(self, layer_params):
        s = 2048
        wrapper = DirectConvBound(layer_params)
        numeric = wrapper.composite(2 * s).t_of_s(2 * s)
        closed = wrapper.t_upper(2 * s)
        assert numeric == pytest.approx(closed, rel=0.05)

    def test_invalid_s(self, layer_params):
        with pytest.raises(ValueError):
            direct_conv_io_lower_bound(layer_params, 0)

    def test_larger_kernel_larger_bound(self):
        small = ConvParams.square(56, 64, 64, kernel=1)
        big = ConvParams.square(56, 64, 64, kernel=3, padding=1)
        assert direct_conv_io_lower_bound(big, 4096) > direct_conv_io_lower_bound(small, 4096)


class TestWinogradBound:
    def test_vertex_count_formula(self, layer_params):
        e, r = 2, 3
        t = e + r - 1
        outputs = layer_params.out_height * layer_params.out_width * layer_params.out_channels
        expected = 2 * outputs * layer_params.in_channels * t**4 / (e * e)
        assert winograd_vertex_count(layer_params, e) == pytest.approx(expected)

    def test_bound_positive(self, layer_params):
        assert winograd_io_lower_bound(layer_params, 2, 12288) > 0

    def test_bound_decreases_with_memory(self, layer_params):
        assert winograd_io_lower_bound(layer_params, 2, 4096) > winograd_io_lower_bound(layer_params, 2, 32768)

    def test_asymptotic_inverse_sqrt_s(self, layer_params):
        q1 = winograd_io_lower_bound_asymptotic(layer_params, 2, 1024)
        q2 = winograd_io_lower_bound_asymptotic(layer_params, 2, 4096)
        assert q1 / q2 == pytest.approx(2.0, rel=1e-6)

    def test_t_upper_monotone_in_s(self, layer_params):
        assert winograd_t_upper(layer_params, 2, 4096) < winograd_t_upper(layer_params, 2, 8192)

    def test_rejects_strided(self, strided_params):
        with pytest.raises(ValueError):
            winograd_io_lower_bound(strided_params, 2, 1024)

    def test_wrapper_composite_positive(self, layer_params):
        wrapper = WinogradBound(layer_params, e=2)
        assert wrapper.composite(1024).io_lower_bound(512) >= 0

    def test_same_scaling_as_direct_conv(self, layer_params):
        """Both bounds scale as 1/√S, so their ratio is independent of S."""
        r1 = winograd_io_lower_bound_asymptotic(layer_params, 2, 2048) / \
            direct_conv_io_lower_bound_asymptotic(layer_params, 2048)
        r2 = winograd_io_lower_bound_asymptotic(layer_params, 2, 32768) / \
            direct_conv_io_lower_bound_asymptotic(layer_params, 32768)
        assert r1 == pytest.approx(r2, rel=1e-9)


class TestMatmulBound:
    def test_vertex_count(self):
        assert matmul_vertex_count(4, 5, 6) == 11 * 20

    def test_classic_scaling(self):
        # Doubling every dimension multiplies the bound by 8.
        q1 = matmul_io_lower_bound_asymptotic(64, 64, 64, 256)
        q2 = matmul_io_lower_bound_asymptotic(128, 128, 128, 256)
        assert q2 / q1 == pytest.approx(8.0, rel=1e-6)

    def test_equivalent_direct_conv(self):
        """Matmul == direct conv with R=1 and matching dimensions."""
        n, m, k = 36, 16, 64
        # Direct conv with 1x1 kernel, Cin=k, Cout=m, out spatial = n: R = 1.
        p = ConvParams.square(int(math.isqrt(n)), k, m, kernel=1)
        assert p.out_height * p.out_width == n
        s = 512
        assert matmul_io_lower_bound(n, m, k, s) == pytest.approx(
            direct_conv_io_lower_bound(p, s), rel=1e-9
        )

    def test_wrapper(self):
        b = MatmulBound(64, 64, 64)
        assert b.io_lower_bound(256) > 0
        assert b.vertex_count() == matmul_vertex_count(64, 64, 64)

    def test_invalid(self):
        with pytest.raises(ValueError):
            matmul_vertex_count(0, 1, 1)
        with pytest.raises(ValueError):
            matmul_io_lower_bound(4, 4, 4, 0)


class TestEmpiricalGeneration:
    def test_direct_conv_step2_phi_within_lemma(self):
        """Empirical φ₂ on a tiny DAG never exceeds Lemma 4.10's h-1 bound."""
        p = ConvParams.square(3, 1, 1, kernel=2, stride=1)
        dag = direct_conv_dag(p)
        for budget in (2, 3, 4):
            phi, _ = empirical_generation(dag, step=2, budget=budget, capacity=8)
            assert phi <= budget - 1

    def test_empirical_psi_le_phi_when_no_internal(self):
        p = ConvParams.square(3, 1, 1, kernel=2, stride=1)
        dag = direct_conv_dag(p)
        phi, psi = empirical_generation(dag, step=1, budget=4, capacity=8)
        assert psi == phi  # step 1 has no internal vertices (Lemma 4.9)

    def test_empty_step(self):
        p = ConvParams.square(3, 1, 1, kernel=2, stride=1)
        dag = direct_conv_dag(p)
        assert empirical_generation(dag, step=7, budget=4, capacity=8) == (0, 0)
