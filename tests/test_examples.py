"""Smoke tests for the example scripts (the documented entry points).

Only the cheaper examples are executed here (the tuning-heavy ones are
exercised indirectly by the tuner tests and the benchmark harness).
"""

import pathlib
import subprocess
import sys


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    return result.stdout


def test_examples_directory_contents():
    expected = {
        "quickstart.py",
        "lower_bound_analysis.py",
        "tune_conv_layer.py",
        "end_to_end_resnet.py",
        "pebble_game_demo.py",
        "tuning_daemon_demo.py",
    }
    assert expected <= {p.name for p in EXAMPLES_DIR.glob("*.py")}


def test_lower_bound_analysis_example():
    out = _run("lower_bound_analysis.py")
    assert "lower bound" in out
    assert "greedy/bound" in out


def test_pebble_game_demo_example():
    out = _run("pebble_game_demo.py")
    assert "Direct convolution DAG" in out
    assert "Winograd DAG" in out


def test_end_to_end_resnet_example():
    out = _run("end_to_end_resnet.py")
    assert "ResNet-18" in out
    assert "speedup" in out


def test_tuning_daemon_demo_example():
    out = _run("tuning_daemon_demo.py")
    assert "re-served result bit-identical: True" in out
    assert "measurements taken by the restarted daemon: 0" in out
    assert "backoff -> success" in out
    assert "pool result bit-identical to service backend: True" in out
    # The real double-fork act only runs with --daemonize (not under test
    # runners); the default run must announce the skip, not attempt it.
    assert "daemonized process wrapper (skipped" in out
