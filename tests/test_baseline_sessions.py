"""Baseline tuners as step-wise sessions: protocol + bit-identity.

Every baseline tuner must run through the session protocol
(propose → measure → update) with trajectories bit-identical to its direct
``tune()`` loop, whether the session is driven by hand, by the shared
``tune()`` driver, or by the concurrent tuning service — property-tested on
full trajectories across tuners, seeds and budgets.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import ConvParams
from repro.core.autotune import (
    BaselineSession,
    GeneticTuner,
    ParallelTemperingSATuner,
    RandomSearchTuner,
    SimulatedAnnealingTuner,
    TuningSessionProtocol,
    TVMStyleTuner,
)
from repro.gpusim import V100
from repro.service import TUNERS, TuningRequest, TuningService

SMALL = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)
LAYER = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)

BASELINE_CLASSES = {
    "random": RandomSearchTuner,
    "simulated_annealing": SimulatedAnnealingTuner,
    "sa_tempering": ParallelTemperingSATuner,
    "genetic": GeneticTuner,
}


def _trajectory(result):
    return [(t.config.key(), t.time_seconds) for t in result.trials]


def _request(tuner, budget=20, seed=3, **kw):
    return TuningRequest(
        SMALL,
        V100,
        max_measurements=budget,
        seed=seed,
        tuner=tuner,
        pruned=False,
        **kw,
    )


class TestSessionProtocol:
    @pytest.mark.parametrize("name", sorted(BASELINE_CLASSES))
    def test_sessions_satisfy_protocol(self, name):
        tuner = BASELINE_CLASSES[name](SMALL, V100, max_measurements=8, seed=1)
        session = tuner.session()
        assert isinstance(session, BaselineSession)
        assert isinstance(session, TuningSessionProtocol)

    def test_propose_twice_without_update_raises(self):
        session = RandomSearchTuner(SMALL, V100, max_measurements=8, seed=1).session()
        session.propose()
        with pytest.raises(RuntimeError):
            session.propose()

    def test_update_without_proposal_raises(self):
        session = RandomSearchTuner(SMALL, V100, max_measurements=8, seed=1).session()
        with pytest.raises(RuntimeError):
            session.update([], [])

    def test_update_length_mismatch_raises(self):
        tuner = GeneticTuner(SMALL, V100, max_measurements=12, seed=1)
        session = tuner.session()
        batch = session.propose()
        with pytest.raises(ValueError):
            session.update(batch, [None] * (len(batch) + 1))

    @pytest.mark.parametrize("name", sorted(BASELINE_CLASSES))
    def test_finished_session_proposes_nothing(self, name):
        tuner = BASELINE_CLASSES[name](SMALL, V100, max_measurements=10, seed=2)
        session = tuner.session()
        while True:
            batch = session.propose()
            if not batch:
                break
            session.update(batch, tuner.measurer.measure_batch(batch))
        assert session.finished
        assert session.propose() == []
        assert session.result.num_measurements <= 10

    @pytest.mark.parametrize("name", sorted(BASELINE_CLASSES))
    def test_budget_exhausts_exactly(self, name):
        # The shared budget bookkeeping stops every tuner exactly at its
        # measurement budget (the genetic brood and the tempering round are
        # both clipped to the remaining budget).
        result = BASELINE_CLASSES[name](SMALL, V100, max_measurements=17, seed=4).tune()
        assert result.num_measurements == 17

    def test_tvm_style_result_name(self):
        result = TVMStyleTuner(SMALL, V100, max_measurements=8, seed=1).tune()
        assert result.tuner == "tvm_style"
        session = TVMStyleTuner(SMALL, V100, max_measurements=8, seed=1).session(4)
        assert session.result.tuner == "tvm_style"


class TestSessionBitIdentity:
    @pytest.mark.parametrize("name", sorted(BASELINE_CLASSES))
    def test_manual_session_drive_matches_tune(self, name):
        cls = BASELINE_CLASSES[name]
        reference = cls(SMALL, V100, max_measurements=20, seed=5).tune()
        tuner = cls(SMALL, V100, max_measurements=20, seed=5)
        session = tuner.session()
        while not session.finished:
            batch = session.propose()
            if not batch:
                break
            session.update(batch, tuner.measurer.measure_batch(batch))
        assert _trajectory(session.result) == _trajectory(reference)
        assert session.result.tuner == reference.tuner

    @settings(max_examples=20, deadline=None)
    @given(
        name=st.sampled_from(sorted(TUNERS)),
        seed=st.integers(0, 2**16),
        budget=st.integers(4, 32),
    )
    def test_service_trajectory_matches_direct(self, name, seed, budget):
        """The tentpole property: any tuner, scheduled through the service,
        reproduces its direct ``tune()`` trajectory bit-for-bit."""
        request = _request(name, budget=budget, seed=seed)
        reference = request.tune_direct()
        result = TuningService().tune([request])[0]
        assert _trajectory(result) == _trajectory(reference)
        assert result.tuner == reference.tuner

    def test_service_matches_direct_with_hyperparameters(self):
        # Hyperparameters reach the scheduled session (and join the key).
        request = _request(
            "sa_tempering",
            budget=24,
            tuner_params={"chains": 4, "initial_temperature": 0.5},
        )
        reference = request.tune_direct()
        result = TuningService().tune([request])[0]
        assert _trajectory(result) == _trajectory(reference)

    def test_mixed_algorithm_workload_matches_direct(self):
        requests = [
            TuningRequest(SMALL, V100, max_measurements=20, seed=1),  # ate
            _request("random", budget=24),
            _request("simulated_annealing", budget=16),
            _request("sa_tempering", budget=24, tuner_params={"chains": 4}),
            _request("genetic", budget=24, tuner_params={"population": 8, "elite": 2}),
            _request("tvm_style", budget=16),
            _request("random", budget=24),  # duplicate: coalesces
        ]
        service = TuningService()
        results = service.tune(requests)
        assert service.stats.tuning_runs == 6
        assert service.stats.coalesced == 1
        for request, result in zip(requests, results):
            reference = request.tune_direct()
            assert result.best_config == reference.best_config
            assert result.best_time == reference.best_time
            if not result.from_cache:
                assert _trajectory(result) == _trajectory(reference)

    def test_different_tuners_do_not_coalesce(self):
        service = TuningService()
        service.tune([_request("random"), _request("genetic")])
        assert service.stats.tuning_runs == 2
        assert service.stats.coalesced == 0

    def test_different_hyperparameters_do_not_coalesce(self):
        service = TuningService()
        service.tune(
            [
                _request("sa_tempering", tuner_params={"chains": 4}),
                _request("sa_tempering", tuner_params={"chains": 8}),
            ]
        )
        assert service.stats.tuning_runs == 2


class TestRequestValidation:
    def test_unknown_tuner_rejected(self):
        with pytest.raises(ValueError):
            TuningRequest(SMALL, V100, tuner="gradient_descent")

    def test_tvm_style_requires_unpruned(self):
        with pytest.raises(ValueError):
            TuningRequest(SMALL, V100, tuner="tvm_style")
        TuningRequest(SMALL, V100, tuner="tvm_style", pruned=False)  # ok

    def test_engine_tuners_reject_tuner_params(self):
        with pytest.raises(ValueError):
            TuningRequest(SMALL, V100, tuner="ate", tuner_params={"chains": 4})

    def test_tuner_params_dict_normalised_into_key(self):
        a = TuningRequest(
            SMALL, V100, pruned=False, tuner="genetic",
            tuner_params={"population": 8, "elite": 2},
        )
        b = TuningRequest(
            SMALL, V100, pruned=False, tuner="genetic",
            tuner_params=(("elite", 2), ("population", 8)),
        )
        # An unsorted tuple canonicalises too — same hyperparameters must
        # always share one coalescing key, whatever the input order/shape.
        c = TuningRequest(
            SMALL, V100, pruned=False, tuner="genetic",
            tuner_params=(("population", 8), ("elite", 2)),
        )
        assert a == b == c and hash(a) == hash(b) == hash(c)
        assert a.tuner_params == (("elite", 2), ("population", 8))

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError):
            TuningRequest(SMALL, V100, deadline="soon")

    def test_describe_names_tuner(self):
        assert "genetic" in _request("genetic").describe()


class TestRunnerIntegration:
    def _net(self):
        from repro.nets import ConvLayer, ConvNet

        return ConvNet(
            "tiny",
            [
                ConvLayer("c1", 8, 16, 32, kernel=3, stride=1, padding=1),
                ConvLayer("c2", 8, 32, 32, kernel=3, stride=1, padding=1),
            ],
        )

    def test_tuned_mode_accepts_baseline_tuner(self):
        from repro.nets.runner import ModelRunner

        runner = ModelRunner(V100, mode="tuned", max_measurements=16, tuner="random")
        timing = runner.time_model(self._net())
        assert timing.ours_seconds > 0

    def test_unknown_runner_tuner_rejected(self):
        from repro.nets.runner import ModelRunner

        with pytest.raises(ValueError):
            ModelRunner(V100, tuner="nope")

    def test_compare_tuners_runs_every_tuner_through_one_service(self):
        from repro.nets.runner import ModelRunner

        runner = ModelRunner(V100, mode="tuned", max_measurements=16)
        timings = runner.compare_tuners(self._net(), tuners=("ate", "random"))
        assert set(timings) == {"ate", "random"}
        for timing in timings.values():
            assert timing.ours_seconds > 0
            assert len(timing.layers) == 2

    def test_compare_tuners_rejects_unknown(self):
        from repro.nets.runner import ModelRunner

        with pytest.raises(ValueError):
            ModelRunner(V100).compare_tuners(self._net(), tuners=("ate", "nope"))
