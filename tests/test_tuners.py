"""Tests for the auto-tuning engine, the explorer and the baseline tuners."""

import random

import pytest

from repro.conv import ConvParams
from repro.core.autotune import (
    AutoTuningEngine,
    CostModel,
    ExplorerConfig,
    GeneticTuner,
    Measurer,
    ParallelRandomWalkExplorer,
    RandomSearchTuner,
    SearchSpace,
    SimulatedAnnealingTuner,
    TVMStyleTuner,
    TrialRecord,
    TuningResult,
    feature_matrix,
)
from repro.gpusim import V100

# A small layer keeps the tuning tests fast while leaving a non-trivial space.
LAYER = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)
BUDGET = 60


@pytest.fixture(scope="module")
def shared_measurer():
    return Measurer(LAYER, V100)


@pytest.fixture(scope="module")
def ate_result(shared_measurer):
    engine = AutoTuningEngine(
        LAYER, V100, "direct", max_measurements=BUDGET, seed=3, measurer=shared_measurer
    )
    return engine.tune()


class TestExplorer:
    def test_propose_without_model(self, pyrng):
        space = SearchSpace(LAYER, V100, "direct", pruned=True)
        explorer = ParallelRandomWalkExplorer(space, LAYER, V100, seed=1)
        batch = explorer.propose(None, batch_size=8)
        assert len(batch) == 8
        assert len({c.key() for c in batch}) == 8

    def test_propose_respects_visited(self):
        space = SearchSpace(LAYER, V100, "direct", pruned=True)
        explorer = ParallelRandomWalkExplorer(space, LAYER, V100, seed=2)
        first = explorer.propose(None, batch_size=6)
        visited = {c.key() for c in first}
        second = explorer.propose(None, batch_size=6, visited=set(visited))
        assert not visited & {c.key() for c in second}

    def test_propose_with_trained_model_prefers_fast(self, shared_measurer):
        space = SearchSpace(LAYER, V100, "direct", pruned=True)
        rng = random.Random(0)
        train = space.sample(rng, 40)
        times = [shared_measurer.time_seconds(c) if shared_measurer.is_feasible(c) else float("inf") for c in train]
        model = CostModel(min_samples=8, seed=0)
        model.fit(feature_matrix(train, LAYER, V100), times)
        explorer = ParallelRandomWalkExplorer(space, LAYER, V100, seed=3)
        batch = explorer.propose(model, batch_size=10)
        batch_times = [shared_measurer.time_seconds(c) for c in batch if shared_measurer.is_feasible(c)]
        random_times = [t for t in times if t != float("inf")]
        assert sum(batch_times) / len(batch_times) <= sum(random_times) / len(random_times)

    def test_explorer_config_validation(self):
        with pytest.raises(ValueError):
            ExplorerConfig(num_walkers=0)
        with pytest.raises(ValueError):
            ExplorerConfig(restart_fraction=1.5)

    @pytest.mark.parametrize("epsilon", [0.0, 0.25, 1.0])
    def test_epsilon_greedy_fills_batch(self, epsilon):
        """Regression for the collapsed random-fill loop: whatever fraction of
        the batch is reserved for ε-greedy exploration, the proposal always
        returns a full batch of unique, unvisited configurations."""
        space = SearchSpace(LAYER, V100, "direct", pruned=True)
        explorer = ParallelRandomWalkExplorer(
            space, LAYER, V100, config=ExplorerConfig(epsilon=epsilon), seed=4
        )
        visited = {c.key() for c in space.sample(random.Random(0), 50)}
        batch = explorer.propose(None, batch_size=12, visited=set(visited))
        assert len(batch) == 12
        keys = {c.key() for c in batch}
        assert len(keys) == 12
        assert not keys & visited


class TestTuningResult:
    def test_best_and_curve(self, ate_result):
        assert ate_result.best_time > 0
        curve = ate_result.best_gflops_curve()
        assert len(curve) == ate_result.num_measurements
        assert curve == sorted(curve)  # best-so-far is monotone
        assert curve[-1] == pytest.approx(ate_result.best_gflops)

    def test_measurements_to_reach(self, ate_result):
        n99 = ate_result.measurements_to_reach(0.99)
        n50 = ate_result.measurements_to_reach(0.50)
        assert 1 <= n50 <= n99 <= ate_result.num_measurements

    def test_measurements_to_reach_validation(self, ate_result):
        with pytest.raises(ValueError):
            ate_result.measurements_to_reach(0.0)

    def test_empty_result_raises(self):
        r = TuningResult(tuner="x", params=LAYER, gpu="V100")
        with pytest.raises(RuntimeError):
            _ = r.best_trial

    def test_measurements_to_reach_all_invalid_is_zero(self):
        """An all-invalid run has a flat-zero curve; it must not report
        convergence at measurement 1 (target would be 0.0)."""
        r = TuningResult(tuner="x", params=LAYER, gpu="V100")
        for i in range(5):
            r.trials.append(
                TrialRecord(index=i, config=None, time_seconds=float("inf"), gflops=0.0)
            )
        assert r.measurements_to_reach(0.99) == 0
        assert r.measurements_to_reach(0.5) == 0

    def test_measurements_to_reach_empty_is_zero(self):
        r = TuningResult(tuner="x", params=LAYER, gpu="V100")
        assert r.measurements_to_reach(0.99) == 0


class TestAutoTuningEngine:
    def test_respects_budget(self, ate_result):
        assert ate_result.num_measurements <= BUDGET

    def test_best_config_in_pruned_space(self, ate_result):
        space = SearchSpace(LAYER, V100, "direct", pruned=True)
        assert space.contains(ate_result.best_config)

    def test_space_size_recorded(self, ate_result):
        assert ate_result.space_size == SearchSpace(LAYER, V100, "direct", pruned=True).size()

    def test_beats_pure_random(self, ate_result, shared_measurer):
        rnd = RandomSearchTuner(
            LAYER, V100, "direct", max_measurements=BUDGET, seed=3, measurer=shared_measurer
        ).tune()
        assert ate_result.best_gflops >= 0.9 * rnd.best_gflops

    def test_improves_over_initial_samples(self, ate_result):
        curve = ate_result.best_gflops_curve()
        assert curve[-1] > curve[7]  # better than the best of the first 8 random samples

    def test_winograd_tuning_runs(self, shared_measurer):
        engine = AutoTuningEngine(LAYER, V100, "winograd", max_measurements=40, seed=5)
        res = engine.tune()
        assert res.best_config.algorithm == "winograd"
        assert res.best_gflops > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AutoTuningEngine(LAYER, V100, max_measurements=0)
        with pytest.raises(ValueError):
            AutoTuningEngine(LAYER, V100, batch_size=0)
        with pytest.raises(ValueError):
            AutoTuningEngine(LAYER, V100, patience=0)


class TestBaselines:
    def test_random_search(self, shared_measurer):
        res = RandomSearchTuner(LAYER, V100, max_measurements=30, seed=1, measurer=shared_measurer).tune()
        assert res.tuner == "random"
        assert 0 < res.num_measurements <= 30

    def test_simulated_annealing(self, shared_measurer):
        res = SimulatedAnnealingTuner(LAYER, V100, max_measurements=30, seed=1, measurer=shared_measurer).tune()
        assert res.tuner == "simulated_annealing"
        assert res.best_time > 0

    def test_genetic(self, shared_measurer):
        res = GeneticTuner(LAYER, V100, max_measurements=40, seed=1, measurer=shared_measurer).tune()
        assert res.tuner == "genetic"
        assert res.best_time > 0

    def test_tvm_style_uses_full_space(self, shared_measurer):
        tvm = TVMStyleTuner(LAYER, V100, "direct", max_measurements=40, seed=1, measurer=shared_measurer)
        assert not tvm.space.pruned
        res = tvm.tune()
        assert res.tuner == "tvm_style"
        assert res.space_size > SearchSpace(LAYER, V100, "direct", pruned=True).size()

    def test_ate_space_smaller_than_tvm_space(self):
        ate = AutoTuningEngine(LAYER, V100, "direct", max_measurements=10, seed=0)
        tvm = TVMStyleTuner(LAYER, V100, "direct", max_measurements=10, seed=0)
        assert ate.space.size() < tvm.space.size()

    def test_sa_params_validated(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingTuner(LAYER, V100, initial_temperature=0)

    def test_genetic_params_validated(self):
        with pytest.raises(ValueError):
            GeneticTuner(LAYER, V100, population=2)

    def test_baseline_budget_respected(self, shared_measurer):
        for cls in (RandomSearchTuner, SimulatedAnnealingTuner, GeneticTuner):
            res = cls(LAYER, V100, max_measurements=25, seed=2, measurer=shared_measurer).tune()
            assert res.num_measurements <= 25 + 24  # GA may finish its generation
