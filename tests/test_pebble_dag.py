"""Tests for the computation DAG and the DAG builders."""

import pytest

from repro.conv import ConvParams
from repro.pebble import (
    ComputationDAG,
    direct_conv_dag,
    linear_combination_tree,
    matmul_dag,
    summation_tree,
    winograd_dag,
)


class TestComputationDAG:
    def test_add_vertices_and_edges(self):
        dag = ComputationDAG()
        a = dag.add_input("a")
        b = dag.add_input("b")
        c = dag.add_vertex("product", step=1, predecessors=(a, b))
        assert dag.num_vertices == 3
        assert dag.num_edges == 2
        assert dag.predecessors(c) == (a, b)
        assert set(dag.successors(a)) == {c}

    def test_input_with_predecessor_rejected(self):
        dag = ComputationDAG()
        a = dag.add_input()
        with pytest.raises(ValueError):
            dag.add_vertex("input", predecessors=(a,))

    def test_noninput_without_predecessor_rejected(self):
        dag = ComputationDAG()
        with pytest.raises(ValueError):
            dag.add_vertex("sum", step=1, predecessors=())

    def test_forward_reference_rejected(self):
        dag = ComputationDAG()
        dag.add_input()
        with pytest.raises(ValueError):
            dag.add_vertex("sum", step=1, predecessors=(5,))

    def test_inputs_outputs(self):
        dag = ComputationDAG()
        a, b = dag.add_input(), dag.add_input()
        c = dag.add_vertex("sum", step=1, predecessors=(a, b))
        d = dag.add_vertex("sum", step=1, predecessors=(c,))
        assert dag.inputs() == [a, b]
        assert dag.outputs() == [d]
        assert dag.internal_and_output_vertices() == [c, d]

    def test_steps(self):
        dag = ComputationDAG()
        a = dag.add_input()
        b = dag.add_vertex("p", step=1, predecessors=(a,))
        c = dag.add_vertex("s", step=2, predecessors=(b,))
        assert dag.num_steps() == 2
        assert dag.vertices_of_step(1) == [b]
        assert dag.step_outputs(1) == [b]
        assert dag.step_outputs(2) == [c]

    def test_ancestors_descendants(self):
        dag = ComputationDAG()
        a, b = dag.add_input(), dag.add_input()
        c = dag.add_vertex("p", step=1, predecessors=(a, b))
        d = dag.add_vertex("s", step=2, predecessors=(c,))
        assert dag.ancestors([d]) == {a, b, c, d}
        assert dag.descendants([a]) == {a, c, d}

    def test_generated_by(self):
        dag = ComputationDAG()
        a, b = dag.add_input(), dag.add_input()
        c = dag.add_vertex("p", step=1, predecessors=(a, b))
        d = dag.add_vertex("s", step=2, predecessors=(c,))
        # {c} dominates d but not itself-from-inputs... c is generated only if in the set
        assert dag.generated_by({c}) == {c, d}
        assert dag.generated_by({a}) == {a}
        assert dag.generated_by({a, b}) == {a, b, c, d}

    def test_is_dominator(self):
        dag = ComputationDAG()
        a, b = dag.add_input(), dag.add_input()
        c = dag.add_vertex("p", step=1, predecessors=(a, b))
        d = dag.add_vertex("s", step=2, predecessors=(c,))
        assert dag.is_dominator({c}, {d})
        assert dag.is_dominator({a, b}, {c, d})
        assert not dag.is_dominator({a}, {c})

    def test_minimum_set(self):
        dag = ComputationDAG()
        a, b = dag.add_input(), dag.add_input()
        c = dag.add_vertex("p", step=1, predecessors=(a, b))
        d = dag.add_vertex("s", step=2, predecessors=(c,))
        assert dag.minimum_set({c, d}) == {d}
        assert dag.minimum_set({a, c, d}) == {d}

    def test_multistep_validation_passes(self):
        dag = ComputationDAG()
        a = dag.add_input()
        b = dag.add_vertex("p", step=1, predecessors=(a,))
        dag.add_vertex("s", step=2, predecessors=(b,))
        dag.validate_multistep_partition()

    def test_multistep_validation_rejects_backward_edge(self):
        dag = ComputationDAG()
        a = dag.add_input()
        b = dag.add_vertex("p", step=2, predecessors=(a,))
        dag.add_vertex("s", step=1, predecessors=(b,))
        with pytest.raises(ValueError):
            dag.validate_multistep_partition()

    def test_summary_counts(self):
        dag = ComputationDAG()
        a, b = dag.add_input(), dag.add_input()
        dag.add_vertex("p", step=1, predecessors=(a, b))
        s = dag.summary()
        assert s["vertices"] == 3 and s["inputs"] == 2 and s["kind:p"] == 1


class TestTrees:
    def test_summation_tree_counts(self):
        """Lemma 4.7: k inputs -> k-2 internal + 1 output vertices."""
        for k in (2, 3, 5, 9):
            dag = ComputationDAG()
            leaves = [dag.add_input() for _ in range(k)]
            root = summation_tree(dag, leaves, step=1)
            added = dag.num_vertices - k
            assert added == k - 1  # (k-2) internal + 1 output
            assert dag.kind(root) == "sum_out"
            assert dag.outputs() == [root]

    def test_summation_tree_single_leaf(self):
        dag = ComputationDAG()
        leaf = dag.add_input()
        root = summation_tree(dag, [leaf], step=1)
        assert dag.predecessors(root) == (leaf,)

    def test_summation_tree_empty_rejected(self):
        dag = ComputationDAG()
        with pytest.raises(ValueError):
            summation_tree(dag, [], step=1)

    def test_linear_combination_tree_counts(self):
        """Lemma 4.13: k inputs -> 2k-2 internal + 1 output vertices."""
        for k in (2, 4, 7):
            dag = ComputationDAG()
            leaves = [dag.add_input() for _ in range(k)]
            linear_combination_tree(dag, leaves, step=1)
            added = dag.num_vertices - k
            assert added == 2 * k - 1  # (2k-2) internal + 1 output

    def test_linear_combination_in_degree_bound(self):
        dag = ComputationDAG()
        leaves = [dag.add_input() for _ in range(6)]
        linear_combination_tree(dag, leaves, step=1)
        for v in dag.vertices():
            assert len(dag.predecessors(v.vid)) <= 2


class TestDirectConvDag:
    def test_vertex_count_matches_lemma_4_8(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        k = tiny_params.ker_height * tiny_params.ker_width * tiny_params.in_channels
        outputs = tiny_params.out_height * tiny_params.out_width * tiny_params.out_channels
        assert len(dag.internal_and_output_vertices()) == (2 * k - 1) * outputs

    def test_number_of_outputs(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        assert len(dag.outputs()) == tiny_params.output_elements

    def test_number_of_inputs(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        assert len(dag.inputs()) == (
            tiny_params.in_channels * tiny_params.in_height * tiny_params.in_width
            + tiny_params.kernel_elements
        )

    def test_two_steps(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        assert dag.num_steps() == 2

    def test_product_count(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        k = tiny_params.ker_height * tiny_params.ker_width * tiny_params.in_channels
        products = [v for v in dag.vertices() if v.kind == "product"]
        assert len(products) == k * tiny_params.output_elements

    def test_rejects_batch(self):
        with pytest.raises(ValueError):
            direct_conv_dag(ConvParams.square(4, 2, 2, kernel=3, batch=2))

    def test_rejects_padding(self):
        with pytest.raises(ValueError):
            direct_conv_dag(ConvParams.square(4, 2, 2, kernel=3, padding=1))

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            direct_conv_dag(ConvParams.square(4, 1, 1, kernel=1))


class TestWinogradDag:
    def test_four_steps(self):
        p = ConvParams.square(5, 2, 2, kernel=2, stride=1)
        dag = winograd_dag(p, e=2)
        assert dag.num_steps() == 4

    def test_output_count(self):
        p = ConvParams.square(5, 2, 2, kernel=2, stride=1)
        dag = winograd_dag(p, e=2)
        assert len(dag.outputs()) == p.output_elements

    def test_rejects_non_multiple_tiles(self):
        p = ConvParams.square(5, 2, 2, kernel=3, stride=1)  # out 3, e=2
        with pytest.raises(ValueError):
            winograd_dag(p, e=2)

    def test_rejects_strided(self):
        p = ConvParams.square(6, 2, 2, kernel=2, stride=2)
        with pytest.raises(ValueError):
            winograd_dag(p, e=2)

    def test_elementwise_product_count(self):
        p = ConvParams.square(5, 3, 2, kernel=2, stride=1)
        dag = winograd_dag(p, e=2)
        t = 3  # e + r - 1
        tiles = (p.out_height // 2) * (p.out_width // 2)
        products = [v for v in dag.vertices() if v.kind == "product"]
        assert len(products) == tiles * p.out_channels * p.in_channels * t * t


class TestMatmulDag:
    def test_vertex_count(self):
        dag = matmul_dag(3, 4, 5)
        assert len(dag.internal_and_output_vertices()) == (2 * 5 - 1) * 3 * 4

    def test_outputs(self):
        dag = matmul_dag(3, 4, 5)
        assert len(dag.outputs()) == 12

    def test_inputs(self):
        dag = matmul_dag(3, 4, 5)
        assert len(dag.inputs()) == 3 * 5 + 5 * 4

    def test_rejects_k1(self):
        with pytest.raises(ValueError):
            matmul_dag(3, 3, 1)
