"""Tests for the near I/O-optimal dataflow strategies (Section 5)."""


import pytest

from repro.conv import ConvParams
from repro.core.bounds import (
    direct_conv_io_lower_bound,
    winograd_io_lower_bound,
)
from repro.core.dataflow import (
    DirectDataflow,
    IOVolume,
    OutputTile,
    WinogradDataflow,
    candidate_tiles,
    ceil_div,
    direct_dataflow_io,
    direct_dataflow_io_optimal,
    optimal_tile_direct,
    optimal_tile_winograd,
    optimality_condition_residual,
    satisfies_optimality,
    simulate_direct_dataflow,
    simulate_winograd_dataflow,
    winograd_dataflow_io,
    winograd_dataflow_io_optimal,
)


class TestCommon:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_output_tile_validation(self):
        with pytest.raises(ValueError):
            OutputTile(0, 1, 1)

    def test_tile_outputs_and_footprint(self):
        p = ConvParams.square(16, 8, 8, kernel=3, stride=2, padding=1)
        tile = OutputTile(4, 2, 3)
        assert tile.outputs == 24
        # x' = (4-1)*2 + 3 = 9, y' = (2-1)*2+3 = 5
        assert tile.input_footprint(p) == 45

    def test_clip_to(self):
        p = ConvParams.square(6, 2, 4, kernel=3, padding=1)
        tile = OutputTile(100, 100, 100).clip_to(p)
        assert (tile.x, tile.y, tile.z) == (6, 6, 4)

    def test_io_volume_arithmetic(self):
        v = IOVolume(input_reads=10, weight_reads=5, output_writes=3, extra=2)
        assert v.total == 20
        assert v.bytes(4) == 80
        assert (v + v).total == 40
        assert v.scaled(2.0).total == 40
        assert set(v.breakdown()) == {"input_reads", "weight_reads", "output_writes", "extra", "total"}


class TestOptimality:
    def test_residual_zero_when_exact(self):
        p = ConvParams.square(18, 16, 16, kernel=3, stride=1)
        tile = OutputTile(6, 6, 4)  # xy = 36 = 9*4 = R*z
        assert optimality_condition_residual(tile, p) == pytest.approx(0.0)
        assert satisfies_optimality(tile, p)

    def test_residual_positive_otherwise(self):
        p = ConvParams.square(18, 16, 16, kernel=3, stride=1)
        assert optimality_condition_residual(OutputTile(1, 1, 16), p) > 0.9

    def test_optimal_tile_direct_fits(self, layer_params, fast_memory):
        tile = optimal_tile_direct(layer_params, fast_memory)
        df = DirectDataflow(layer_params, fast_memory, tile=tile)
        assert df.fits()

    def test_optimal_tile_direct_near_condition(self, layer_params, fast_memory):
        tile = optimal_tile_direct(layer_params, fast_memory)
        assert optimality_condition_residual(tile, layer_params) < 0.6

    def test_optimal_tile_with_processors_smaller(self, layer_params, fast_memory):
        t1 = optimal_tile_direct(layer_params, fast_memory, processors=1)
        t8 = optimal_tile_direct(layer_params, fast_memory, processors=8)
        assert t8.outputs <= t1.outputs

    def test_optimal_tile_winograd_fits(self, layer_params, fast_memory):
        tile = optimal_tile_winograd(layer_params, fast_memory, e=2)
        df = WinogradDataflow(layer_params, fast_memory, e=2, tile=tile)
        assert df.fits()

    def test_candidate_tiles_divisors_and_capacity(self, fast_memory):
        p = ConvParams.square(12, 16, 8, kernel=3, padding=1)
        tiles = candidate_tiles(p, fast_memory)
        assert tiles
        for t in tiles:
            assert p.out_width % t.x == 0
            assert p.out_height % t.y == 0
            assert p.out_channels % t.z == 0
            assert t.outputs <= fast_memory

    def test_candidate_tiles_with_optimality_filter(self, fast_memory):
        p = ConvParams.square(12, 16, 8, kernel=3, padding=1)
        all_tiles = candidate_tiles(p, fast_memory)
        opt_tiles = candidate_tiles(p, fast_memory, require_optimality=True)
        assert 0 < len(opt_tiles) < len(all_tiles)
        assert all(satisfies_optimality(t, p) for t in opt_tiles)

    def test_invalid_args(self, layer_params):
        with pytest.raises(ValueError):
            optimal_tile_direct(layer_params, 0)
        with pytest.raises(ValueError):
            optimal_tile_winograd(layer_params, 1024, e=0)
        with pytest.raises(ValueError):
            candidate_tiles(layer_params, 0)


class TestDirectDataflow:
    def test_closed_form_matches_simulation_when_divisible(self):
        p = ConvParams.square(16, 8, 8, kernel=3, stride=1, padding=1)
        tile = OutputTile(4, 4, 2)
        closed = direct_dataflow_io(p, tile)
        sim = simulate_direct_dataflow(p, tile, count_halo_exactly=False)
        assert sim.weight_reads == pytest.approx(closed.weight_reads)
        assert sim.output_writes == pytest.approx(closed.output_writes)
        assert sim.input_reads == pytest.approx(closed.input_reads)

    def test_simulation_with_halo_clipping_not_larger(self, layer_params):
        tile = OutputTile(8, 8, 8)
        exact = simulate_direct_dataflow(layer_params, tile, count_halo_exactly=True)
        approx = simulate_direct_dataflow(layer_params, tile, count_halo_exactly=False)
        assert exact.input_reads <= approx.input_reads

    def test_output_written_once(self, layer_params):
        vol = direct_dataflow_io(layer_params, OutputTile(7, 7, 8))
        assert vol.output_writes == layer_params.output_elements

    def test_io_scales_with_batch(self, layer_params):
        tile = OutputTile(7, 7, 8)
        v1 = direct_dataflow_io(layer_params, tile).total
        v4 = direct_dataflow_io(layer_params.with_batch(4), tile).total
        assert v4 == pytest.approx(4 * v1)

    def test_optimal_formula_monotone_in_s(self, layer_params):
        v_small = direct_dataflow_io_optimal(layer_params, 2048).total
        v_large = direct_dataflow_io_optimal(layer_params, 32768).total
        assert v_large < v_small

    def test_dataflow_above_lower_bound(self, layer_params, fast_memory):
        """Any legal dataflow moves at least the lower-bound volume."""
        lower = direct_conv_io_lower_bound(layer_params, fast_memory)
        df = DirectDataflow(layer_params, fast_memory)
        assert df.io_volume().total >= lower
        assert df.io_volume_simulated().total >= lower

    def test_dataflow_within_constant_of_bound(self, layer_params, fast_memory):
        """Near-optimality: the dataflow is within a moderate constant factor
        of the lower bound (the paper's Θ-optimality claim)."""
        lower = direct_conv_io_lower_bound(layer_params, fast_memory)
        df = DirectDataflow(layer_params, fast_memory)
        assert df.io_volume().total <= 64 * lower

    def test_optimal_tile_better_than_bad_tile(self, layer_params, fast_memory):
        good = DirectDataflow(layer_params, fast_memory).io_volume().total
        bad = direct_dataflow_io(layer_params, OutputTile(1, 1, 1)).total
        assert good < bad

    def test_invalid_construction(self, layer_params):
        with pytest.raises(ValueError):
            DirectDataflow(layer_params, 0)
        with pytest.raises(ValueError):
            DirectDataflow(layer_params, 1024, processors=0)


class TestWinogradDataflow:
    def test_closed_form_matches_simulation_when_divisible(self):
        p = ConvParams.square(16, 8, 8, kernel=3, stride=1, padding=1)
        tile = OutputTile(4, 4, 2)
        closed = winograd_dataflow_io(p, tile, e=2)
        sim = simulate_winograd_dataflow(p, tile, e=2)
        assert sim.weight_reads == pytest.approx(closed.weight_reads)
        assert sim.output_writes == pytest.approx(closed.output_writes)
        # Simulated halo is clipped at borders, closed form is not.
        assert sim.input_reads <= closed.input_reads

    def test_rejects_strided(self, strided_params):
        with pytest.raises(ValueError):
            winograd_dataflow_io(strided_params, OutputTile(2, 2, 2), e=2)

    def test_dataflow_above_lower_bound(self, layer_params, fast_memory):
        lower = winograd_io_lower_bound(layer_params, 2, fast_memory)
        df = WinogradDataflow(layer_params, fast_memory, e=2)
        assert df.io_volume().total >= lower

    def test_optimal_tile_reads_less_than_generic_tile(self, layer_params, fast_memory):
        """The optimality-condition tile moves less data than the generic
        fixed 8x8x8 blocking a library kernel would use."""
        wino = WinogradDataflow(layer_params, fast_memory, e=2).io_volume()
        generic = winograd_dataflow_io(layer_params, OutputTile(8, 8, 8), e=2)
        assert wino.reads < generic.reads

    def test_optimal_formula_monotone_in_s(self, layer_params):
        v_small = winograd_dataflow_io_optimal(layer_params, 2048, e=2).total
        v_large = winograd_dataflow_io_optimal(layer_params, 32768, e=2).total
        assert v_large < v_small

    def test_on_chip_elements_accounts_temporaries(self, layer_params, fast_memory):
        df = WinogradDataflow(layer_params, fast_memory, e=2)
        t = df.tile
        assert df.on_chip_elements() >= 2 * (2 + 3 - 1) ** 2 // 4 * t.outputs

    def test_invalid_construction(self, layer_params):
        with pytest.raises(ValueError):
            WinogradDataflow(layer_params, 0, e=2)
        with pytest.raises(ValueError):
            WinogradDataflow(layer_params, 1024, e=0)
