"""Property-based tests (hypothesis) for the bounds, dataflows and tuner spaces."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import ConvParams
from repro.core.autotune import SearchSpace, build_profile
from repro.core.bounds import (
    direct_conv_io_lower_bound,
    direct_conv_t_upper,
    direct_conv_vertex_count,
    winograd_io_lower_bound,
)
from repro.core.dataflow import (
    DirectDataflow,
    OutputTile,
    WinogradDataflow,
    direct_dataflow_io,
    optimal_tile_direct,
    simulate_direct_dataflow,
)
from repro.gpusim import V100


layer_strategy = st.builds(
    ConvParams.square,
    size=st.sampled_from([7, 14, 28, 56]),
    in_channels=st.sampled_from([16, 64, 256]),
    out_channels=st.sampled_from([32, 128, 512]),
    kernel=st.sampled_from([1, 3, 5]),
    stride=st.sampled_from([1, 2]),
    padding=st.integers(0, 2),
)

stride1_layers = st.builds(
    ConvParams.square,
    size=st.sampled_from([14, 28, 56]),
    in_channels=st.sampled_from([16, 64]),
    out_channels=st.sampled_from([32, 128]),
    kernel=st.just(3),
    stride=st.just(1),
    padding=st.integers(0, 1),
)

memory_strategy = st.sampled_from([1024, 4096, 12288, 32768])


@settings(max_examples=40, deadline=None)
@given(params=layer_strategy, s=memory_strategy)
def test_direct_dataflow_never_below_lower_bound(params, s):
    df = DirectDataflow(params, s)
    assert df.io_volume().total >= direct_conv_io_lower_bound(params, s)


@settings(max_examples=30, deadline=None)
@given(params=stride1_layers, s=memory_strategy)
def test_winograd_dataflow_never_below_lower_bound(params, s):
    df = WinogradDataflow(params, s, e=2)
    assert df.io_volume().total >= winograd_io_lower_bound(params, 2, s)


@settings(max_examples=30, deadline=None)
@given(params=layer_strategy, s=memory_strategy)
def test_lower_bound_monotone_in_memory(params, s):
    assert direct_conv_io_lower_bound(params, 2 * s) <= direct_conv_io_lower_bound(params, s)


@settings(max_examples=30, deadline=None)
@given(params=layer_strategy, s=memory_strategy)
def test_t_upper_monotone_in_memory(params, s):
    assert direct_conv_t_upper(params, s) < direct_conv_t_upper(params, 2 * s)


@settings(max_examples=30, deadline=None)
@given(params=layer_strategy)
def test_vertex_count_positive_and_consistent(params):
    v = direct_conv_vertex_count(params)
    assert v > 0
    # Exactly (2K-1) vertices per output element.
    k = params.ker_height * params.ker_width * params.in_channels
    assert v == (2 * k - 1) * params.output_elements


@settings(max_examples=30, deadline=None)
@given(params=layer_strategy, s=memory_strategy)
def test_optimal_tile_fits_and_is_positive(params, s):
    tile = optimal_tile_direct(params, s)
    assert tile.x >= 1 and tile.y >= 1 and tile.z >= 1
    assert tile.x <= params.out_width
    assert tile.y <= params.out_height
    assert tile.z <= params.out_channels
    assert DirectDataflow(params, s, tile=tile).fits()


@settings(max_examples=25, deadline=None)
@given(
    params=layer_strategy,
    tx=st.integers(1, 8),
    ty=st.integers(1, 8),
    tz=st.integers(1, 8),
)
def test_closed_form_io_at_least_simulated_weights(params, tx, ty, tz):
    """The closed form charges full halos everywhere, so it upper-bounds the
    border-clipped tile-loop simulation."""
    tile = OutputTile(tx, ty, tz)
    closed = direct_dataflow_io(params, tile)
    sim = simulate_direct_dataflow(params, tile, count_halo_exactly=True)
    assert sim.input_reads <= closed.input_reads + 1e-9
    # Partial border tiles make the simulated weight traffic at most the
    # closed form's whole-tile charge; they agree exactly when z | Cout.
    assert sim.weight_reads <= closed.weight_reads + 1e-9
    if params.out_channels % tz == 0:
        assert sim.weight_reads == pytest.approx(closed.weight_reads)


@settings(max_examples=15, deadline=None)
@given(params=stride1_layers, seed=st.integers(0, 1000))
def test_sampled_configurations_lower_to_valid_profiles(params, seed):
    """Any configuration sampled from the pruned domain either lowers to a
    valid kernel profile or is rejected with ValueError (never crashes)."""
    space = SearchSpace(params, V100, "direct", pruned=True)
    rng = random.Random(seed)
    for _ in range(5):
        cfg = space.random_configuration(rng)
        try:
            profile = build_profile(cfg, params, V100)
        except ValueError:
            continue
        assert profile.dram_bytes > 0
        assert profile.smem_per_block <= V100.shared_mem_per_sm


@settings(max_examples=20, deadline=None)
@given(params=stride1_layers)
def test_pruned_space_subset_of_full_space(params):
    full = SearchSpace(params, V100, "direct", pruned=False)
    pruned = SearchSpace(params, V100, "direct", pruned=True)
    assert pruned.size() <= full.size()
    rng = random.Random(0)
    for _ in range(5):
        cfg = pruned.random_configuration(rng)
        assert full.contains(cfg) or cfg.smem_per_block <= V100.shared_mem_per_sm // 2
