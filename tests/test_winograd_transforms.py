"""Tests for the Cook–Toom construction of Winograd transform matrices."""

from fractions import Fraction

import numpy as np
import pytest

from repro.conv import cook_toom_1d, winograd_transforms
from repro.conv.winograd_transforms import default_points


def correlation_1d(d, g):
    """Reference 1-D valid correlation."""
    m = len(d) - len(g) + 1
    return np.array([np.dot(d[i : i + len(g)], g) for i in range(m)])


class TestDefaultPoints:
    def test_count(self):
        for n in range(1, 8):
            assert len(default_points(n)) == n

    def test_distinct(self):
        pts = default_points(9)
        assert len(set(pts)) == 9

    def test_starts_at_zero(self):
        assert default_points(3)[0] == Fraction(0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            default_points(-1)


class TestCookToom1D:
    @pytest.mark.parametrize("m,r", [(2, 3), (3, 3), (4, 3), (2, 5), (6, 3), (2, 2), (5, 5)])
    def test_algorithm_computes_correlation(self, m, r):
        at, g_mat, bt = cook_toom_1d(m, r)
        rng = np.random.default_rng(m * 10 + r)
        d = rng.standard_normal(m + r - 1)
        g = rng.standard_normal(r)
        got = at @ ((g_mat @ g) * (bt @ d))
        assert np.allclose(got, correlation_1d(d, g), atol=1e-9)

    def test_shapes(self):
        at, g, bt = cook_toom_1d(4, 3)
        assert at.shape == (4, 6)
        assert g.shape == (6, 3)
        assert bt.shape == (6, 6)

    def test_rejects_f11(self):
        with pytest.raises(ValueError):
            cook_toom_1d(1, 1)

    def test_rejects_bad_point_count(self):
        with pytest.raises(ValueError):
            cook_toom_1d(2, 3, points=[Fraction(0), Fraction(1)])

    def test_rejects_duplicate_points(self):
        with pytest.raises(ValueError):
            cook_toom_1d(2, 3, points=[Fraction(0), Fraction(0), Fraction(1)])

    def test_custom_points_still_correct(self):
        pts = [Fraction(0), Fraction(1), Fraction(-2)]
        at, g_mat, bt = cook_toom_1d(2, 3, points=pts)
        rng = np.random.default_rng(0)
        d, g = rng.standard_normal(4), rng.standard_normal(3)
        assert np.allclose(at @ ((g_mat @ g) * (bt @ d)), correlation_1d(d, g))

    def test_f23_number_of_multiplications(self):
        at, _, _ = cook_toom_1d(2, 3)
        # F(2,3) uses m+r-1 = 4 multiplications — the defining property.
        assert at.shape[1] == 4


class TestWinogradTransforms2D:
    @pytest.mark.parametrize("m,r", [(2, 3), (4, 3), (3, 2), (2, 5)])
    def test_2d_tile_correct(self, m, r):
        tf = winograd_transforms(m, r)
        t = tf.tile_in
        rng = np.random.default_rng(3)
        d = rng.standard_normal((t, t))
        g = rng.standard_normal((r, r))
        got = tf.output_2d(tf.input_2d(d) * tf.filter_2d(g))
        # Reference: 2-D valid correlation of the t x t tile with the r x r filter.
        ref = np.array(
            [
                [np.sum(d[i : i + r, j : j + r] * g) for j in range(m)]
                for i in range(m)
            ]
        )
        assert np.allclose(got, ref, atol=1e-8)

    def test_cached_instance(self):
        assert winograd_transforms(2, 3) is winograd_transforms(2, 3)

    def test_multiplications_property(self):
        tf = winograd_transforms(2, 3)
        assert tf.multiplications == 16

    def test_tile_in(self):
        assert winograd_transforms(4, 3).tile_in == 6

    def test_matrices_finite(self):
        tf = winograd_transforms(6, 3)
        for m in (tf.AT, tf.G, tf.BT):
            assert np.all(np.isfinite(m))
