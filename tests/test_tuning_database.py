"""Tests for the persistent tuning database and its engine/runner wiring."""

import json
import os
import random
import threading

import pytest

from repro.conv import ConvParams
from repro.core.autotune import (
    AutoTuningEngine,
    Measurer,
    SearchSpace,
    TuningDatabase,
    TuningDatabaseError,
    TuningRecord,
    default_database_path,
)
from repro.gpusim import V100
from repro.nets import ConvLayer, ConvNet, ModelRunner

LAYER = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)
SMALL = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)


def _record(params=LAYER, gpu="V100", algorithm="direct", time_seconds=1e-3, **kw):
    space = SearchSpace(params, V100, algorithm, pruned=True)
    config = space.random_configuration(random.Random(0))
    return TuningRecord(
        params=params,
        gpu=gpu,
        algorithm=algorithm,
        config=config,
        time_seconds=time_seconds,
        gflops=123.0,
        **kw,
    )


class TestDatabaseBasics:
    def test_put_and_lookup(self):
        db = TuningDatabase()
        record = _record()
        db.put(record)
        assert len(db) == 1
        assert db.lookup(LAYER, V100, "direct") is record
        assert db.lookup(LAYER, "V100", "direct") is record  # name or spec
        assert db.lookup(LAYER, V100, "winograd") is None
        assert (db.hits, db.misses) == (2, 1)

    def test_contains_does_not_count(self):
        db = TuningDatabase([_record()])
        assert db.contains(LAYER, V100, "direct")
        assert not db.contains(SMALL, V100, "direct")
        assert (db.hits, db.misses) == (0, 0)

    def test_collision_keeps_faster_record(self):
        db = TuningDatabase()
        slow = _record(time_seconds=2e-3)
        fast = _record(time_seconds=1e-3)
        db.put(slow)
        assert db.put(fast) is fast
        assert db.put(slow) is fast  # slower record does not evict the faster
        assert len(db) == 1

    def test_distinct_params_are_distinct_keys(self):
        db = TuningDatabase([_record(), _record(params=LAYER.with_batch(4))])
        assert len(db) == 2

    def test_as_result_round_trip(self):
        record = _record(num_measurements=40, space_size=1000)
        result = record.as_result()
        assert result.from_cache
        assert result.best_config == record.config
        assert result.best_time == record.time_seconds
        assert result.space_size == 1000
        assert result.num_measurements == 1


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        db = TuningDatabase()
        db.put(_record(tuner="ate", num_measurements=64, space_size=4096))
        db.put(_record(params=SMALL, algorithm="winograd", time_seconds=5e-4))
        path = tmp_path / "tuning.json"
        db.save(path)
        loaded = TuningDatabase.load(path)
        assert len(loaded) == len(db)
        for original in db.records():
            restored = loaded.lookup(original.params, original.gpu, original.algorithm)
            assert restored == original

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "records": []}')
        with pytest.raises(ValueError):
            TuningDatabase.load(path)

    def test_apply_folds_another_database(self):
        a = TuningDatabase([_record()])
        b = TuningDatabase([_record(params=SMALL)])
        a.apply(b)
        assert len(a) == 2

    def test_apply_keeps_better_config(self):
        # Worker databases tuned independently may disagree on the same
        # problem; the folded database must keep the faster configuration
        # regardless of fold direction.
        fast, slow = _record(time_seconds=1e-3), _record(time_seconds=2e-3)
        a, b = TuningDatabase([slow]), TuningDatabase([fast])
        a.apply(TuningDatabase([fast]))
        b.apply(TuningDatabase([slow]))
        for db in (a, b):
            assert len(db) == 1
            assert db.lookup(LAYER, V100, "direct").time_seconds == 1e-3

    def test_apply_accepts_record_iterables(self):
        db = TuningDatabase()
        db.apply([_record(), _record(params=SMALL)])
        db.apply(r for r in [_record(params=LAYER.with_batch(4))])
        assert len(db) == 3


class TestDefaultLocation:
    def test_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "nested" / "db.json"
        monkeypatch.setenv("REPRO_TUNING_DB", str(target))
        assert default_database_path() == str(target)
        db = TuningDatabase.default()
        assert db.path == str(target)
        db.put(_record())
        saved = db.save()  # bare save persists to the remembered location
        assert saved == str(target) and target.exists()
        reloaded = TuningDatabase.default()
        assert len(reloaded) == 1

    def test_default_cache_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNING_DB", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg-cache-test")
        assert default_database_path() == "/tmp/xdg-cache-test/repro-tuning.json"

    @pytest.mark.parametrize(
        "payload",
        [
            "{not json",  # invalid syntax (a truncated save looks like this)
            '{"version": 1, "records": [{"par',  # literally truncated
            "[]",  # valid JSON, wrong shape
            '{"version": 1, "records": [42]}',  # malformed record
            '{"version": 1, "records": [{"gpu": "V100"}]}',  # missing fields
        ],
    )
    def test_corrupt_explicit_file_raises(self, tmp_path, monkeypatch, payload):
        # Regression: an unloadable $REPRO_TUNING_DB used to silently start
        # empty — discarding the user's records and overwriting the file on
        # the next save.  The user named this database; failing to open it
        # must be loud and name the path.
        target = tmp_path / "db.json"
        target.write_text(payload)
        monkeypatch.setenv("REPRO_TUNING_DB", str(target))
        with pytest.raises(TuningDatabaseError, match="REPRO_TUNING_DB"):
            TuningDatabase.default()
        assert target.read_text() == payload  # the file was not clobbered

    def test_explicit_directory_path_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNING_DB", str(tmp_path))  # a directory
        with pytest.raises(TuningDatabaseError):
            TuningDatabase.default()

    def test_explicit_unwritable_file_raises(self, tmp_path, monkeypatch):
        target = tmp_path / "db.json"
        TuningDatabase([_record()]).save(target)
        monkeypatch.setenv("REPRO_TUNING_DB", str(target))
        # os.access is authoritative-but-root-blind, so stub it: the suite
        # runs as root in CI containers, where chmod 0o444 still "works".
        real_access = os.access
        monkeypatch.setattr(
            os,
            "access",
            lambda p, mode: False if str(p) == str(target) else real_access(p, mode),
        )
        with pytest.raises(TuningDatabaseError, match="not writable"):
            TuningDatabase.default()

    def test_explicit_path_through_a_file_raises(self, tmp_path, monkeypatch):
        # $REPRO_TUNING_DB nests the database under something that is a
        # *file*: save() could never create the directories, so default()
        # must refuse up front rather than lose a whole run's results at
        # the final save.
        blocker = tmp_path / "blocker.txt"
        blocker.write_text("in the way")
        monkeypatch.setenv("REPRO_TUNING_DB", str(blocker / "nested" / "db.json"))
        with pytest.raises(TuningDatabaseError, match="not a writable directory"):
            TuningDatabase.default()

    def test_explicit_unwritable_ancestor_raises(self, tmp_path, monkeypatch):
        target = tmp_path / "missing" / "deeper" / "db.json"
        monkeypatch.setenv("REPRO_TUNING_DB", str(target))
        real_access = os.access
        monkeypatch.setattr(
            os,
            "access",
            lambda p, mode: False if str(p) == str(tmp_path) else real_access(p, mode),
        )
        with pytest.raises(TuningDatabaseError, match="not a writable directory"):
            TuningDatabase.default()

    @pytest.mark.parametrize(
        "payload",
        ["{not json", '{"version": 1, "records": [42]}'],
    )
    def test_corrupt_implicit_cache_starts_empty(self, tmp_path, monkeypatch, payload):
        # The implicit cache-directory default stays lenient: nobody asked
        # for that file by name, so a corrupt cache entry must not brick
        # tuning — it starts empty and the next save rewrites it atomically.
        monkeypatch.delenv("REPRO_TUNING_DB", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        target = tmp_path / "repro-tuning.json"
        target.write_text(payload)
        db = TuningDatabase.default()
        assert len(db) == 0
        db.put(_record())
        db.save()
        assert len(TuningDatabase.default()) == 1  # rewritten atomically

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            TuningDatabase().save()


class TestAtomicSave:
    def test_crash_during_write_preserves_existing_file(self, tmp_path, monkeypatch):
        path = tmp_path / "db.json"
        TuningDatabase([_record()]).save(path)
        before = path.read_text()

        # Simulated crash: the dump dies halfway through writing the payload.
        def exploding_dump(payload, fh, **kwargs):
            fh.write('{"version": 1, "records": [truncat')
            raise OSError("disk full")

        monkeypatch.setattr(json, "dump", exploding_dump)
        with pytest.raises(OSError):
            TuningDatabase([_record(), _record(params=SMALL)]).save(path)
        # The original file is untouched and no temp litter remains.
        assert path.read_text() == before
        assert os.listdir(tmp_path) == ["db.json"]
        assert len(TuningDatabase.load(path)) == 1

    def test_crash_during_replace_preserves_existing_file(self, tmp_path, monkeypatch):
        path = tmp_path / "db.json"
        TuningDatabase([_record()]).save(path)
        before = path.read_text()
        monkeypatch.setattr(
            os, "replace", lambda *a: (_ for _ in ()).throw(OSError("power cut"))
        )
        with pytest.raises(OSError):
            TuningDatabase([_record(params=SMALL)]).save(path)
        monkeypatch.undo()
        assert path.read_text() == before
        assert os.listdir(tmp_path) == ["db.json"]

    def test_save_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "db.json"
        TuningDatabase([_record()]).save(path)
        assert len(TuningDatabase.load(path)) == 1


class TestConcurrency:
    def test_concurrent_puts_and_lookups(self):
        db = TuningDatabase()
        errors = []

        def writer(offset):
            try:
                for i in range(50):
                    db.put(_record(params=LAYER.with_batch(offset * 50 + i + 1)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                for _ in range(100):
                    db.lookup(LAYER, V100, "direct")
                    db.records()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(db) == 200


class TestEngineWiring:
    def test_second_tune_served_from_database(self):
        db = TuningDatabase()
        measurer = Measurer(SMALL, V100)
        engine = AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=24, seed=1,
            measurer=measurer, database=db,
        )
        first = engine.tune()
        assert not first.from_cache
        assert len(db) == 1
        spent = measurer.num_measurements

        again = AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=24, seed=99,
            measurer=measurer, database=db,
        ).tune()
        assert again.from_cache
        assert again.best_time == first.best_time
        assert again.best_config == first.best_config
        assert measurer.num_measurements == spent  # zero new measurements

    def test_tune_without_database_unchanged(self):
        result = AutoTuningEngine(SMALL, V100, "direct", max_measurements=16, seed=1).tune()
        assert not result.from_cache

    def test_unpruned_engine_bypasses_database(self):
        # A TVM-style (unpruned) run must neither consume nor pollute the
        # database of pruned ATE records.
        db = TuningDatabase()
        AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=16, seed=1, database=db
        ).tune()
        assert len(db) == 1
        unpruned = AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=16, seed=1,
            pruned=False, database=db,
        ).tune()
        assert not unpruned.from_cache
        assert len(db) == 1  # nothing stored for the unpruned space

    def test_low_budget_record_does_not_serve_bigger_request(self):
        db = TuningDatabase()
        measurer = Measurer(SMALL, V100)
        AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=8, seed=1,
            measurer=measurer, database=db,
        ).tune()
        thorough = AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=32, seed=1,
            measurer=measurer, database=db,
        ).tune()
        assert not thorough.from_cache  # the 8-budget record did not pin it
        record = db.lookup(SMALL, V100, "direct")
        assert record.budget == 32  # upgraded by the thorough run
        # A smaller request is now happily served from the cache.
        small = AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=8, seed=5,
            measurer=measurer, database=db,
        ).tune()
        assert small.from_cache

    def test_put_collision_inherits_larger_budget(self):
        db = TuningDatabase()
        db.put(_record(time_seconds=2e-3, budget=96))
        kept = db.put(_record(time_seconds=1e-3, budget=8))
        assert kept.time_seconds == 1e-3
        assert kept.budget == 96  # the faster config also covers the 96-budget

    def test_mismatched_measurement_conditions_are_misses(self):
        db = TuningDatabase()
        noisy = Measurer(SMALL, V100)  # default noise=0.05, seed=2021
        AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=16, seed=1,
            measurer=noisy, database=db,
        ).tune()
        # A noiseless measurer must not be served times measured with noise.
        clean = Measurer(SMALL, V100, noise=0.0)
        result = AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=16, seed=1,
            measurer=clean, database=db,
        ).tune()
        assert not result.from_cache
        # Both condition sets coexist under the problem key — alternating
        # runners keep hitting their own records instead of evicting each
        # other (no retune ping-pong).
        assert len(db) == 2
        assert db.lookup(SMALL, V100, "direct", noise=0.05, noise_seed=2021).noise == 0.05
        assert db.lookup(SMALL, V100, "direct", noise=0.0, noise_seed=2021).noise == 0.0
        again = AutoTuningEngine(
            SMALL, V100, "direct", max_measurements=16, seed=7,
            measurer=noisy, database=db,
        ).tune()
        assert again.from_cache

    def test_unknown_condition_records_serve_any_caller(self):
        db = TuningDatabase([_record(time_seconds=1e-3)])  # noise=None: unknown
        assert db.lookup(LAYER, V100, "direct", noise=0.0, noise_seed=5) is not None


class TestRunnerReuse:
    def test_repeated_layers_tune_once(self):
        # Two identically-shaped layers under different names plus one distinct
        # layer: the database must collapse the duplicates to one tuning run.
        net = ConvNet(
            name="toy",
            layers=(
                ConvLayer("a", 16, 8, 32, kernel=3, padding=1),
                ConvLayer("b", 16, 8, 32, kernel=3, padding=1, repeat=3),
                ConvLayer("c", 16, 8, 16, kernel=3, padding=1),
            ),
        )
        runner = ModelRunner(V100, mode="tuned", max_measurements=16)
        timing = runner.time_model(net)
        # Layers a and b share (ConvParams, algorithm): a tunes, b hits.
        distinct = 2  # distinct ConvParams among a/b/c
        algorithms_per_layer = 2  # direct + winograd candidates (3x3, Cin>=16)
        assert len(runner.database) == distinct * algorithms_per_layer
        assert runner.database.hits > 0
        assert timing.layers[0].ours_seconds == timing.layers[1].ours_seconds

    def test_database_shared_across_models(self):
        net = ConvNet(name="m1", layers=(ConvLayer("a", 16, 8, 32, kernel=3, padding=1),))
        db = TuningDatabase()
        ModelRunner(V100, mode="tuned", max_measurements=16, database=db).time_model(net)
        stored = len(db)
        assert stored > 0
        hits_before = db.hits
        ModelRunner(V100, mode="tuned", max_measurements=16, database=db).time_model(net)
        assert len(db) == stored  # nothing re-tuned
        assert db.hits > hits_before

    def test_analytic_mode_matches_scalar_layer_path(self):
        net = ConvNet(
            name="toy",
            layers=(
                ConvLayer("a", 16, 8, 32, kernel=3, padding=1),
                ConvLayer("b", 3, 16, 8, kernel=5, stride=2),
            ),
        )
        runner = ModelRunner(V100, mode="analytic")
        timing = runner.time_model(net)
        for layer, got in zip(net.layers, timing.layers):
            want = runner.time_layer(layer)
            assert got.ours_seconds == want.ours_seconds
            assert got.algorithm == want.algorithm
            assert got.cudnn_seconds == want.cudnn_seconds
