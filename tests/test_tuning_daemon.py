"""The always-on daemon's fault model, property-tested deterministically.

Everything here runs under :class:`FakeTransport` + ``FakeClock`` — zero
real sockets, zero real time — so the crash, overload and timeout
scenarios are exactly reproducible:

* the journal's durability contract (torn trailing line tolerated,
  corruption rejected, snapshot compaction, replay-twice == replay-once),
* crash recovery (SIGKILL mid-request and mid-drain: done results
  re-serve bit-identically with **zero** re-measurement, in-flight
  requests replay idempotently through the keep-better database),
* admission control (queue depth and token bucket answer with typed
  ``RETRY_AFTER`` — a submit never hangs),
* per-request timeouts (cancelled cleanly, journaled ``failed(TIMEOUT)``),
* the client's retry discipline (overload -> backoff -> eventual success,
  transient transport faults, idempotent resubmit).

The one threaded test (socket server + concurrent clients + a kill) is
marked ``slow`` and runs in the non-blocking stress CI job.
"""

import dataclasses
import json
import os
import socket
import threading
import time

import pytest

from repro.conv import ConvParams
from repro.core.autotune.store import TuningDatabaseError
from repro.gpusim import V100
from repro.obs import FakeClock, MonotonicClock, Observability
from repro.service import frontend
from repro.service import (
    DaemonClient,
    DaemonDraining,
    DaemonSocketServer,
    DeadlineExpired,
    FakeTransport,
    Overloaded,
    RequestJournal,
    RequestTimeout,
    SocketTransport,
    TuningDaemon,
    TuningRequest,
    TuningWorkerPool,
    UnknownRequest,
    request_from_wire,
    request_id,
    request_to_wire,
    result_from_wire,
    result_to_wire,
)

SMALL = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)


def _request(seed=0, budget=12, tuner="random", deadline=None):
    """A small deterministic request (random tuner: cheap, budget-exact)."""
    return TuningRequest(
        SMALL,
        V100,
        max_measurements=budget,
        seed=seed,
        pruned=False,
        tuner=tuner,
        deadline=deadline,
    )


def _sa_request(seed=0, budget=50, deadline=None):
    """One measurement per round — lets tests stop a run mid-flight."""
    return TuningRequest(
        SMALL,
        V100,
        max_measurements=budget,
        seed=seed,
        pruned=False,
        tuner="simulated_annealing",
        deadline=deadline,
    )


def _trials(result):
    """Bit-comparable view of a result's trial list."""
    return [(t.index, t.config.as_dict(), t.time_seconds, t.gflops) for t in result.trials]


class _WarpingClock(FakeClock):
    """A deliberately non-monotonic FakeClock: ``FakeClock.advance`` keeps
    its monotonic contract (negative advances raise), so backwards clock
    excursions — restarts with a different epoch, misbehaving injected
    clocks — are modelled by warping the reading directly."""

    def step_back(self, seconds: float) -> None:
        self._now -= float(seconds)


# -- wire codecs ---------------------------------------------------------- #
class TestWireCodecs:
    def test_request_round_trip(self):
        request = _request(seed=3, budget=7, deadline=9.5)
        wire = json.loads(json.dumps(request_to_wire(request)))
        assert request_from_wire(wire) == request
        assert request_from_wire(wire).deadline == 9.5

    def test_request_id_excludes_deadline(self):
        # deadline is compare=False scheduling metadata: same key, so a
        # retried submit with a refreshed deadline coalesces, not duplicates.
        assert request_id(_request(deadline=None)) == request_id(_request(deadline=5.0))
        assert request_id(_request(seed=0)) != request_id(_request(seed=1))

    def test_result_round_trip_preserves_invalid_trials(self):
        result = _request(budget=6).tune_direct()
        # Rewrite one trial as invalid (infinite time, the no-JSON-Infinity case).
        result.trials[0] = dataclasses.replace(result.trials[0], time_seconds=float("inf"))
        wire = json.loads(json.dumps(result_to_wire(result)))
        restored = result_from_wire(wire)
        assert _trials(restored) == _trials(result)
        assert restored.trials[0].time_seconds == float("inf")


# -- the journal ---------------------------------------------------------- #
class TestRequestJournal:
    def _journal(self, tmp_path, **kwargs):
        return RequestJournal(tmp_path / "requests.log", **kwargs)

    def test_lifecycle_round_trip(self, tmp_path):
        journal = self._journal(tmp_path)
        wire = request_to_wire(_request())
        assert journal.accept("r1", wire)
        assert not journal.accept("r1", wire)  # idempotent resubmit
        journal.mark_running("r1")
        journal.complete("r1", {"tuner": "x"})
        journal.close()
        recovered = self._journal(tmp_path)
        entry = recovered.get("r1")
        assert entry.status == "done"
        assert entry.result == {"tuner": "x"}
        assert entry.request == json.loads(json.dumps(wire))

    def test_terminal_state_is_sticky(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.accept("r1", {})
        journal.fail("r1", {"code": "TIMEOUT", "message": "late"})
        # Stale events after a terminal state are no-ops, never errors.
        assert not journal.mark_running("r1")
        assert not journal.complete("r1", {"tuner": "x"})
        assert journal.get("r1").status == "failed"

    def test_transition_on_unknown_rid_raises(self, tmp_path):
        journal = self._journal(tmp_path)
        with pytest.raises(TuningDatabaseError):
            journal.mark_running("ghost")

    def test_torn_trailing_line_is_tolerated_and_truncated(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.accept("r1", {})
        journal.accept("r2", {})
        journal.close()
        path = journal.path
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "done", "rid": "r2", "res')  # mid-append SIGKILL
        recovered = self._journal(tmp_path)
        assert recovered.get("r2").status == "accepted"  # torn event lost
        assert len(recovered) == 2
        # The partial line is truncated away so later appends stay clean.
        recovered.complete("r2", {"tuner": "x"})
        recovered.close()
        again = self._journal(tmp_path)
        assert again.get("r2").status == "done"

    def test_corrupt_middle_line_raises(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.accept("r1", {})
        journal.close()
        with open(journal.path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        lines.insert(1, "NOT JSON\n")
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        with pytest.raises(TuningDatabaseError):
            self._journal(tmp_path)

    def test_snapshot_compacts_and_recovers(self, tmp_path):
        journal = self._journal(tmp_path)
        for i in range(10):
            journal.accept(f"r{i}", {"i": i})
            journal.complete(f"r{i}", {"tuner": "x"})
        journal.snapshot()
        assert os.path.exists(journal.snapshot_path)
        # Post-snapshot the log is header-only: zero tail lines to replay.
        with open(journal.path, "r", encoding="utf-8") as fh:
            assert len(fh.readlines()) == 1
        journal.close()
        recovered = self._journal(tmp_path)
        assert len(recovered) == 10
        assert all(e.status == "done" for e in recovered.states().values())

    def test_auto_snapshot_at_threshold(self, tmp_path):
        journal = self._journal(tmp_path, snapshot_min_entries=6)
        for i in range(5):
            journal.accept(f"r{i}", {})
            journal.complete(f"r{i}", {"tuner": "x"})
        assert os.path.exists(journal.snapshot_path)

    def test_replay_twice_equals_replay_once(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.accept("r1", {})
        journal.mark_running("r1")
        journal.accept("r2", {})
        journal.complete("r1", {"tuner": "x"})
        once = {rid: e.to_dict() for rid, e in journal.states().items()}
        journal.recover()
        journal.recover()
        twice = {rid: e.to_dict() for rid, e in journal.states().items()}
        assert once == twice

    def test_snapshot_plus_overdelivered_tail_converges(self, tmp_path):
        # Crash between snapshot install and log reset leaves new snapshot +
        # old log; replaying that over-delivered tail must be harmless.
        journal = self._journal(tmp_path)
        journal.accept("r1", {})
        journal.complete("r1", {"tuner": "x"})
        with open(journal.path, "r", encoding="utf-8") as fh:
            old_log = fh.read()
        journal.snapshot()
        journal.close()
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write(old_log)  # the un-reset pre-snapshot log
        recovered = self._journal(tmp_path)
        assert recovered.get("r1").status == "done"
        assert len(recovered) == 1

    def test_closed_journal_refuses_events(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.close()
        with pytest.raises(TuningDatabaseError):
            journal.accept("r1", {})


# -- protocol over FakeTransport ------------------------------------------ #
class TestProtocol:
    def test_submit_status_result(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        client = DaemonClient(FakeTransport(daemon))
        assert client.ping()
        request = _request(budget=8)
        rid = client.submit(request)
        assert rid == request_id(request)
        result = client.result(rid)
        assert client.status(rid)["state"] == "done"
        assert _trials(result) == _trials(request.tune_direct())
        assert daemon.stats.completed == 1

    def test_describe_reports_shape(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log", max_active=3)
        client = DaemonClient(FakeTransport(daemon))
        info = client.describe()
        assert info["kind"] == "TuningDaemon"
        assert info["admission"]["max_active"] == 3
        assert info["journal"]["entries"] == 0

    def test_unknown_rid_is_typed(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        client = DaemonClient(FakeTransport(daemon))
        with pytest.raises(UnknownRequest):
            client.status("nope")

    def test_malformed_ops_get_typed_replies(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        for op in ({"op": "frobnicate"}, {"op": "submit", "request": {}}, {}):
            reply = daemon.handle(op)
            assert reply["ok"] is False
            assert reply["error"]["code"] == "BAD_REQUEST"

    def test_submit_rejects_nonpositive_timeout(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        reply = daemon.handle(
            {"op": "submit", "request": request_to_wire(_request()), "timeout": 0.0}
        )
        assert reply["ok"] is False
        assert reply["error"]["code"] == "BAD_REQUEST"


# -- admission control ---------------------------------------------------- #
class TestAdmission:
    def test_queue_depth_overload_is_immediate(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log", max_active=1)
        daemon.submit(_sa_request(seed=0))
        with pytest.raises(Overloaded) as info:
            daemon.submit(_sa_request(seed=1))
        assert info.value.retry_after > 0
        assert daemon.stats.rejected_overload == 1

    def test_token_bucket_refills_from_the_clock(self, tmp_path):
        clock = FakeClock()
        daemon = TuningDaemon(
            tmp_path / "j.log", clock=clock, rate_limit=1.0, burst=1
        )
        daemon.submit(_request(seed=0))
        with pytest.raises(Overloaded):
            daemon.submit(_request(seed=1))
        clock.advance(1.0)  # one token back
        daemon.submit(_request(seed=1))
        assert daemon.stats.accepted == 2

    def test_expired_deadline_rejected_up_front(self, tmp_path):
        clock = FakeClock()
        clock.advance(100.0)
        daemon = TuningDaemon(tmp_path / "j.log", clock=clock)
        with pytest.raises(DeadlineExpired):
            daemon.submit(_request(deadline=5.0))
        assert daemon.stats.rejected_deadline == 1
        assert len(daemon.journal) == 0  # never admitted, never journaled

    def test_draining_daemon_rejects_submits(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        rid = daemon.submit(_request(seed=0))
        daemon.drain()
        with pytest.raises(DaemonDraining):
            daemon.submit(_request(seed=1))
        # ...but keeps serving results for promises already made.
        assert daemon.status(rid)["state"] == "done"

    def test_idempotent_resubmit_coalesces(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        rid = daemon.submit(_request(seed=0))
        assert daemon.submit(_request(seed=0)) == rid
        assert daemon.stats.accepted == 1
        assert len(daemon.journal) == 1

    def test_backwards_clock_never_subtracts_tokens(self, tmp_path):
        """Regression: the token refill used the raw clock delta, so a
        clock stepping backwards (restart with a different epoch) would
        *subtract* tokens.  The delta is clamped at zero and the refill
        watermark keeps the max-seen reading, so a backwards excursion is
        also never re-credited as fresh elapsed time on recovery."""
        clock = _WarpingClock()
        daemon = TuningDaemon(
            tmp_path / "j.log", clock=clock, rate_limit=1.0, burst=2
        )
        daemon.submit(_request(seed=0))
        daemon.submit(_request(seed=1))  # burst exhausted
        clock.step_back(50.0)
        with pytest.raises(Overloaded):
            daemon.submit(_request(seed=2))  # going backwards earns nothing
        clock.advance(50.0)  # back at the watermark: still zero net elapsed
        with pytest.raises(Overloaded):
            daemon.submit(_request(seed=3))
        clock.advance(1.0)  # one real second past the watermark: one token
        daemon.submit(_request(seed=4))
        assert daemon.stats.accepted == 3

    def test_token_bucket_under_nonmonotonic_clock_property(self, tmp_path):
        """Property: over any warp sequence, accepts never exceed burst +
        net forward progress * rate — the bucket behaves as if it had only
        seen the monotonic envelope of the clock."""
        import random as _random

        rng = _random.Random(1234)
        clock = _WarpingClock()
        daemon = TuningDaemon(
            tmp_path / "j.log",
            clock=clock,
            rate_limit=1.0,
            burst=3,
            max_active=10_000,
        )
        accepted, high_water = 0, 0.0
        for seed in range(200):
            warp = rng.uniform(-2.0, 2.0)
            if warp >= 0:
                clock.advance(warp)
            else:
                clock.step_back(-warp)
            high_water = max(high_water, clock.now())
            try:
                daemon.submit(_request(seed=seed))
                accepted += 1
            except Overloaded:
                pass
            assert accepted <= 3 + high_water * 1.0 + 1e-9


# -- timeouts ------------------------------------------------------------- #
class TestTimeouts:
    def test_timeout_cancels_and_journals_failed(self, tmp_path):
        clock = FakeClock()
        daemon = TuningDaemon(tmp_path / "j.log", clock=clock)
        rid = daemon.submit(_sa_request(budget=500), timeout=5.0)
        daemon.tick()
        clock.advance(10.0)
        daemon.tick()
        assert daemon.stats.timeouts == 1
        entry = daemon.journal.get(rid)
        assert entry.status == "failed"
        assert entry.error["code"] == "TIMEOUT"
        with pytest.raises(RequestTimeout):
            daemon.result(rid)
        assert daemon.queue_depth == 0  # the run was cancelled, not leaked

    def test_default_timeout_applies_to_bare_submits(self, tmp_path):
        clock = FakeClock()
        daemon = TuningDaemon(tmp_path / "j.log", clock=clock, default_timeout=2.0)
        daemon.submit(_sa_request(budget=500))
        clock.advance(3.0)
        daemon.tick()
        assert daemon.stats.timeouts == 1

    def test_fast_request_beats_its_timeout(self, tmp_path):
        clock = FakeClock()
        daemon = TuningDaemon(tmp_path / "j.log", clock=clock)
        rid = daemon.submit(_request(budget=6), timeout=100.0)
        daemon.run_until_idle()
        assert daemon.journal.get(rid).status == "done"
        assert daemon.stats.timeouts == 0

    def test_retry_with_shorter_timeout_tightens_expiry(self, tmp_path):
        """Regression: the idempotent-resubmit path used to drop the
        retry's ``timeout`` on the floor, so a retried submit asking for a
        shorter timeout kept the original (laxer) expiry.  The effective
        expiry is the min of the journaled promise's and the retry's."""
        clock = FakeClock()
        daemon = TuningDaemon(tmp_path / "j.log", clock=clock)
        rid = daemon.submit(_sa_request(budget=500), timeout=100.0)
        assert daemon.submit(_sa_request(budget=500), timeout=1.0) == rid
        daemon.tick()
        clock.advance(5.0)  # past the retry's 1s, far from the original 100s
        daemon.tick()
        assert daemon.stats.timeouts == 1
        assert daemon.journal.get(rid).error["code"] == "TIMEOUT"

    def test_retry_with_longer_timeout_cannot_relax_expiry(self, tmp_path):
        """The dual: a promise only ever tightens by being asked again — a
        retried longer timeout must not resurrect an almost-expired run."""
        clock = FakeClock()
        daemon = TuningDaemon(tmp_path / "j.log", clock=clock)
        rid = daemon.submit(_sa_request(budget=500), timeout=10.0)
        assert daemon.submit(_sa_request(budget=500), timeout=1000.0) == rid
        daemon.tick()
        clock.advance(50.0)  # past the original 10s, well inside 1000s
        daemon.tick()
        assert daemon.stats.timeouts == 1
        assert daemon.journal.get(rid).status == "failed"

    def test_retry_timeout_on_untimed_promise_arms_expiry(self, tmp_path):
        """A first submit without a timeout followed by a retry with one:
        min(None, retry) = the retry's expiry."""
        clock = FakeClock()
        daemon = TuningDaemon(tmp_path / "j.log", clock=clock)
        rid = daemon.submit(_sa_request(budget=500))
        assert daemon.submit(_sa_request(budget=500), timeout=2.0) == rid
        daemon.tick()
        clock.advance(3.0)
        daemon.tick()
        assert daemon.stats.timeouts == 1
        assert daemon.journal.get(rid).status == "failed"


# -- crash recovery ------------------------------------------------------- #
class TestCrashRecovery:
    def test_done_results_reserve_with_zero_measurements(self, tmp_path):
        request = _request(budget=10)
        daemon = TuningDaemon(tmp_path / "j.log")
        rid = daemon.submit(request)
        daemon.run_until_idle()
        reference = _trials(result_from_wire(daemon.result(rid)))
        daemon.kill()

        restarted = TuningDaemon(tmp_path / "j.log")
        assert restarted.stats.recovered == 1
        assert restarted.stats.replayed == 0
        served = _trials(result_from_wire(restarted.result(rid)))
        assert served == reference  # bit-identical re-serve
        assert restarted.service.stats.measurements == 0  # zero re-measurement

    def test_sigkill_mid_request_replays_to_the_same_result(self, tmp_path):
        request = _sa_request(budget=20)
        daemon = TuningDaemon(tmp_path / "j.log")
        rid = daemon.submit(request)
        daemon.tick()
        daemon.tick()  # partial progress, then SIGKILL
        daemon.kill()

        restarted = TuningDaemon(tmp_path / "j.log")
        assert restarted.stats.replayed == 1
        restarted.run_until_idle()
        replayed = result_from_wire(restarted.result(rid))
        assert _trials(replayed) == _trials(request.tune_direct())

    def test_sigkill_mid_drain_recovers(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        done_rid = daemon.submit(_request(seed=0, budget=8))
        daemon.run_until_idle()
        inflight = _sa_request(seed=1, budget=20)
        inflight_rid = daemon.submit(inflight)
        # Drain starts (admissions stop) but the process dies before the
        # in-flight work finishes: the journal tail is all that survives.
        with daemon._lock:
            daemon._draining = True
        daemon.tick()
        daemon.kill()

        restarted = TuningDaemon(tmp_path / "j.log")
        assert restarted.stats.replayed == 1
        restarted.run_until_idle()
        assert restarted.journal.get(done_rid).status == "done"
        assert _trials(result_from_wire(restarted.result(inflight_rid))) == _trials(
            inflight.tune_direct()
        )

    def test_restart_after_torn_journal_line(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        rid = daemon.submit(_request(budget=8))
        daemon.run_until_idle()
        daemon.kill()
        with open(str(tmp_path / "j.log"), "a", encoding="utf-8") as fh:
            fh.write('{"event": "accepted", "rid": "torn-')  # died mid-append
        restarted = TuningDaemon(tmp_path / "j.log")
        assert restarted.journal.get(rid).status == "done"
        assert len(restarted.journal) == 1  # the torn accept never happened

    def test_restart_twice_equals_restart_once(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        daemon.submit(_sa_request(budget=20))
        daemon.tick()
        daemon.kill()
        first = TuningDaemon(tmp_path / "j.log")
        first.kill()  # crash again before making progress
        second = TuningDaemon(tmp_path / "j.log")
        assert second.stats.replayed == 1
        second.run_until_idle()
        states = [e.status for e in second.journal.states().values()]
        assert states == ["done"]

    def test_client_survives_a_daemon_restart(self, tmp_path):
        request = _request(budget=8)
        daemon = TuningDaemon(tmp_path / "j.log")
        transport = FakeTransport(daemon)
        client = DaemonClient(transport, sleep=lambda _: None)
        rid = client.submit(request)
        daemon.run_until_idle()
        reference = _trials(client.result(rid))
        transport.kill()
        daemon.kill()
        with pytest.raises(ConnectionError):
            client.status(rid)
        transport.revive(TuningDaemon(tmp_path / "j.log"))
        # The retried submit is idempotent and the result re-serves.
        assert client.submit(request) == rid
        assert _trials(client.result(rid)) == reference


# -- client retry discipline ---------------------------------------------- #
class TestClientRetry:
    def test_overload_backs_off_and_succeeds(self, tmp_path):
        clock = FakeClock()
        daemon = TuningDaemon(
            tmp_path / "j.log", clock=clock, rate_limit=1.0, burst=1
        )
        # Backoff sleeps advance the fake clock, refilling the bucket.
        client = DaemonClient(FakeTransport(daemon), sleep=clock.advance)
        client.submit(_request(seed=0))
        client.submit(_request(seed=1))  # rejected, backs off, retried
        assert client.retries > 0
        assert daemon.stats.accepted == 2
        assert daemon.stats.rejected_overload > 0

    def test_overload_never_hangs_when_retries_exhaust(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log", max_active=1)
        client = DaemonClient(
            FakeTransport(daemon), max_attempts=3, sleep=lambda _: None
        )
        client.submit(_sa_request(seed=0))
        with pytest.raises(Overloaded):
            client.submit(_sa_request(seed=1))
        assert client.retries == 2  # bounded: max_attempts - 1

    def test_transient_transport_faults_are_retried(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        transport = FakeTransport(daemon)
        client = DaemonClient(transport, sleep=lambda _: None)
        transport.fail_next(2)
        assert client.ping()
        assert client.retries == 2

    def test_backoff_is_deterministic_and_floored_by_hint(self):
        client = DaemonClient(FakeTransport(None), jitter_seed=7)
        twin = DaemonClient(FakeTransport(None), jitter_seed=7)
        delays = [client._backoff_delay(a, None) for a in range(5)]
        assert delays == [twin._backoff_delay(a, None) for a in range(5)]
        assert all(d > 0 for d in delays)
        assert client._backoff_delay(0, 10.0) >= 10.0  # server hint floors

    def test_nonretryable_error_raises_immediately(self, tmp_path):
        clock = FakeClock()
        clock.advance(100.0)
        daemon = TuningDaemon(tmp_path / "j.log", clock=clock)
        transport = FakeTransport(daemon)
        client = DaemonClient(transport, sleep=lambda _: None)
        calls_before = transport.calls
        with pytest.raises(DeadlineExpired):
            client.submit(_request(deadline=5.0))
        assert transport.calls == calls_before + 1  # no retry


# -- telemetry ------------------------------------------------------------ #
class TestTelemetry:
    def test_daemon_metric_names(self, tmp_path):
        obs = Observability(enabled=True, clock=MonotonicClock())
        daemon = TuningDaemon(tmp_path / "j.log", obs=obs)
        daemon.submit(_request(budget=6))
        daemon.run_until_idle()
        counters = daemon.metrics_snapshot().counters
        assert counters["daemon.accepted"] == 1
        assert counters["daemon.completed"] == 1
        # Gauge snapshots report the high-water mark (deepest queue seen).
        assert daemon.metrics_snapshot().gauges["daemon.queue_depth"] == 1
        assert daemon.queue_depth == 0
        histos = obs.registry.snapshot().histograms
        assert histos["daemon.request_latency_seconds"].total == 1

    def test_stats_describe_is_stable(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        daemon.submit(_request(budget=6))
        daemon.run_until_idle()
        assert daemon.stats.describe() == (
            "DaemonStats[1 accepted (0 rejected), 1 done / 0 failed "
            "(0 timeouts), 0 replayed of 0 recovered]"
        )


# -- pool backend ---------------------------------------------------------- #
def _serial_pool(workers=2):
    return TuningWorkerPool(num_workers=workers, use_processes=False)


class TestPoolBackend:
    """`TuningDaemon(backend=...)`: the same journal fault model over the
    sharded serving pool (deterministic in-process shards here; the
    process-fleet variants live in the pool's own test file)."""

    def test_pool_backend_is_bit_identical_to_service(self, tmp_path):
        requests = [_request(seed=seed, budget=8) for seed in range(4)]
        service_daemon = TuningDaemon(tmp_path / "svc.log")
        svc_rids = [service_daemon.submit(r) for r in requests]
        service_daemon.run_until_idle()
        svc = [service_daemon.result(rid) for rid in svc_rids]
        svc_measured = service_daemon.service.stats.measurements
        service_daemon.close()

        pool = _serial_pool()
        pool_daemon = TuningDaemon(tmp_path / "pool.log", backend=pool)
        pool_rids = [pool_daemon.submit(r) for r in requests]
        pool_daemon.run_until_idle()
        assert pool_rids == svc_rids  # same rids: the digest ignores backends
        # Same results (wire-identical) for the same measurement spend.
        assert [pool_daemon.result(rid) for rid in pool_rids] == svc
        assert pool.stats.measurements == svc_measured
        pool_daemon.drain()
        pool_daemon.close()

    def test_restart_reserves_with_zero_measurement(self, tmp_path):
        first = TuningDaemon(tmp_path / "j.log", backend=_serial_pool())
        rid = first.submit(_request(seed=5, budget=8))
        first.run_until_idle()
        reference = first.result(rid)
        first.kill()
        restarted_pool = _serial_pool()
        restarted = TuningDaemon(tmp_path / "j.log", backend=restarted_pool)
        assert restarted.result(rid) == reference
        assert restarted_pool.stats.measurements == 0
        restarted.close()

    def test_inflight_resubmits_into_the_pool_on_restart(self, tmp_path):
        first = TuningDaemon(tmp_path / "j.log", backend=_serial_pool())
        rid = first.submit(_request(seed=6, budget=8))
        first.kill()  # SIGKILL before any tick: the promise is in flight
        restarted = TuningDaemon(tmp_path / "j.log", backend=_serial_pool())
        assert restarted.stats.replayed == 1
        restarted.run_until_idle()
        reference = TuningDaemon(tmp_path / "ref.log")
        ref_rid = reference.submit(_request(seed=6, budget=8))
        reference.run_until_idle()
        assert restarted.result(rid) == reference.result(ref_rid)
        restarted.close()
        reference.close()

    def test_timeout_cancels_through_the_pool(self, tmp_path):
        clock = FakeClock()
        daemon = TuningDaemon(
            tmp_path / "j.log", backend=_serial_pool(), clock=clock
        )
        rid = daemon.submit(_sa_request(budget=500), timeout=5.0)
        daemon.tick()
        clock.advance(10.0)
        daemon.tick()
        assert daemon.stats.timeouts == 1
        assert daemon.journal.get(rid).error["code"] == "TIMEOUT"
        assert daemon.metrics_snapshot().counters["daemon.backend.cancels"] == 1
        daemon.close()

    def test_backend_metrics_and_describe(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log", backend="pool")
        daemon.submit(_request(budget=6))
        daemon.run_until_idle()
        counters = daemon.fleet_snapshot().counters
        assert counters["daemon.backend.submits"] == 1
        assert counters["daemon.backend.steps"] >= 1
        assert counters["pool.requests"] == 1  # the pool's half, one snapshot
        description = daemon.describe()
        assert description["backend"] == "pool"
        assert description["pool"]["serving"]
        assert "service" not in description
        daemon.drain()
        assert not daemon.pool.serving  # drain stopped the fleet
        daemon.close()

    def test_service_backend_describe_is_unchanged(self, tmp_path):
        daemon = TuningDaemon(tmp_path / "j.log")
        description = daemon.describe()
        assert description["backend"] == "service"
        assert description["service"]["kind"] == "TuningService"
        daemon.close()

    def test_invalid_backend_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            TuningDaemon(tmp_path / "j.log", backend="bogus")


# -- transport robustness -------------------------------------------------- #
def _sendall_then_close(path, payload):
    """One raw client interaction: send bytes, read best-effort, close."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(5.0)
    reply = b""
    try:
        sock.connect(path)
        if payload:
            sock.sendall(payload)
        try:
            reply = sock.recv(65536)
        except (OSError, socket.timeout):
            pass
    finally:
        sock.close()
    return reply


class TestReadLine:
    """frontend._read_line against every truncated reply shape: all of them
    must surface as ConnectionError (retryable transport fault), never as a
    JSON decode error escaping to the caller."""

    def _pair(self):
        server, client = socket.socketpair()
        server.settimeout(5.0)
        client.settimeout(5.0)
        return server, client

    def test_whole_line_round_trips(self):
        server, client = self._pair()
        try:
            server.sendall(b'{"ok": true}\n')
            assert frontend._read_line(client) == b'{"ok": true}\n'
        finally:
            server.close()
            client.close()

    def test_midline_disconnect_raises_connection_error(self):
        server, client = self._pair()
        try:
            server.sendall(b'{"ok": tr')  # partial line...
            server.close()  # ...then the peer dies
            with pytest.raises(ConnectionError, match="mid-line"):
                frontend._read_line(client)
        finally:
            client.close()

    def test_immediate_close_raises_connection_error(self):
        server, client = self._pair()
        server.close()
        try:
            with pytest.raises(ConnectionError, match="before a reply"):
                frontend._read_line(client)
        finally:
            client.close()

    def test_slow_two_chunk_line_is_reassembled(self):
        server, client = self._pair()
        try:
            received = {}
            reader = threading.Thread(
                target=lambda: received.update(line=frontend._read_line(client)),
                daemon=True,
            )
            reader.start()
            server.sendall(b'{"ok": ')
            time.sleep(0.05)  # pacing: let the reader see a partial buffer
            server.sendall(b"true}\n")
            reader.join(timeout=5.0)
            assert received["line"] == b'{"ok": true}\n'
        finally:
            server.close()
            client.close()


class TestSocketServerRobustness:
    """DaemonSocketServer vs misbehaving clients: the connection thread may
    drop the client, but the server must keep serving everyone else."""

    def _serving(self, tmp_path, **kwargs):
        path = str(tmp_path / "robust.sock")
        daemon = TuningDaemon(tmp_path / "robust.journal")
        server = DaemonSocketServer(daemon, path, **kwargs).start()
        return path, daemon, server

    def _assert_still_serving(self, path):
        client = DaemonClient(SocketTransport(path, timeout=5.0))
        assert client.ping()

    def test_partial_line_then_disconnect(self, tmp_path):
        path, daemon, server = self._serving(tmp_path)
        try:
            reply = _sendall_then_close(path, b'{"op": "pi')  # no newline
            assert reply == b""  # no line, no reply — just a dropped buffer
            self._assert_still_serving(path)
        finally:
            server.stop()
            daemon.close()

    def test_empty_write_then_disconnect(self, tmp_path):
        path, daemon, server = self._serving(tmp_path)
        try:
            _sendall_then_close(path, b"")
            self._assert_still_serving(path)
        finally:
            server.stop()
            daemon.close()

    def test_oversized_line_gets_bad_request_and_disconnect(self, tmp_path):
        path, daemon, server = self._serving(tmp_path, max_line_bytes=1024)
        try:
            reply = _sendall_then_close(path, b"x" * 4096)  # no newline ever
            assert b"BAD_REQUEST" in reply
            assert b"exceeds" in reply
            self._assert_still_serving(path)
        finally:
            server.stop()
            daemon.close()

    def test_undecodable_line_keeps_the_connection(self, tmp_path):
        path, daemon, server = self._serving(tmp_path)
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(5.0)
            try:
                sock.connect(path)
                sock.sendall(b"not json at all\n")
                bad = frontend._read_line(sock)
                assert b"BAD_REQUEST" in bad
                # Same connection still serves well-formed ops.
                sock.sendall(frontend.encode_line({"op": "ping"}))
                good = frontend._read_line(sock)
                assert b'"pong"' in good
            finally:
                sock.close()
            self._assert_still_serving(path)
        finally:
            server.stop()
            daemon.close()

    def test_slow_client_split_op_is_served(self, tmp_path):
        path, daemon, server = self._serving(tmp_path)
        try:
            wire = frontend.encode_line({"op": "ping"})
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(5.0)
            try:
                sock.connect(path)
                sock.sendall(wire[: len(wire) // 2])
                time.sleep(0.05)  # pacing: land as two separate recvs
                sock.sendall(wire[len(wire) // 2 :])
                reply = frontend._read_line(sock)
                assert b'"pong"' in reply
            finally:
                sock.close()
        finally:
            server.stop()
            daemon.close()


# -- stress (non-blocking CI job) ----------------------------------------- #
@pytest.mark.slow
class TestDaemonStress:
    def test_concurrent_clients_with_a_daemon_kill(self, tmp_path):
        """Socket server, concurrent clients, one SIGKILL + restart.

        Every client must end with the bit-identical direct-tuning result
        for its request — despite racing submits, polls, transport faults
        from the kill window, and the restart replay."""
        path = str(tmp_path / "daemon.sock")
        journal = tmp_path / "j.log"
        requests = [_request(seed=seed, budget=10) for seed in range(6)]
        references = [_trials(r.tune_direct()) for r in requests]

        daemon = TuningDaemon(journal)
        server = DaemonSocketServer(daemon, path).start()
        results = {}
        errors = []

        def worker(index, request):
            client = DaemonClient(
                SocketTransport(path, timeout=10.0),
                max_attempts=60,
                backoff=0.01,
                backoff_cap=0.2,
                jitter_seed=index,
            )
            try:
                results[index] = _trials(client.submit_and_wait(request))
            except Exception as exc:  # surfaced after join
                errors.append((index, exc))

        threads = [
            threading.Thread(target=worker, args=(i, r), daemon=True)
            for i, r in enumerate(requests)
        ]
        for thread in threads:
            thread.start()
        # Kill the daemon while clients are mid-flight, then restart it on
        # the same journal: clients retry through the outage and land on
        # the recovered daemon.
        threads[0].join(timeout=30.0)  # let at least one finish first
        server.stop()
        daemon.kill()
        restarted = TuningDaemon(journal)
        server = DaemonSocketServer(restarted, path + ".2").start()
        # Clients still target the old path; re-bind it to the new daemon.
        server2 = DaemonSocketServer(restarted, path)
        os.unlink(path)
        server2.start()
        for thread in threads:
            thread.join(timeout=60.0)
        server.stop()
        server2.stop()
        assert not errors, errors
        assert results == {i: ref for i, ref in enumerate(references)}
