"""Tests for the red–blue pebble game simulator and S-partition machinery."""

import pytest

from repro.pebble import (
    ComputationDAG,
    direct_conv_dag,
    greedy_s_partition,
    greedy_schedule,
    h_lower_bound,
    matmul_dag,
    natural_dominator,
    play_schedule,
    simulate_topological,
    validate_s_partition,
)
from repro.pebble.spartition import SPartition


def small_chain() -> ComputationDAG:
    dag = ComputationDAG()
    a, b = dag.add_input(), dag.add_input()
    c = dag.add_vertex("p", step=1, predecessors=(a, b))
    dag.add_vertex("s", step=2, predecessors=(c,))
    return dag


class TestPlaySchedule:
    def test_minimal_chain_io(self):
        dag = small_chain()
        res = simulate_topological(dag, capacity=4)
        # Two loads (inputs) + one store (final output) are unavoidable.
        assert res.loads == 2
        assert res.stores == 1
        assert res.io_operations == 3

    def test_io_nonincreasing_with_more_memory(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        prev = None
        for cap in (8, 16, 32, 64, 128):
            q = simulate_topological(dag, capacity=cap).io_operations
            if prev is not None:
                assert q <= prev + 1e-9
            prev = q

    def test_loads_at_least_inputs_when_all_used(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        res = simulate_topological(dag, capacity=32)
        assert res.loads >= len(dag.inputs())

    def test_stores_at_least_outputs(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        res = simulate_topological(dag, capacity=32)
        assert res.stores >= len(dag.outputs())

    def test_peak_red_within_capacity(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        res = simulate_topological(dag, capacity=16)
        assert res.peak_red <= 16

    def test_capacity_too_small_rejected(self):
        dag = small_chain()
        with pytest.raises(ValueError):
            play_schedule(dag, capacity=1)

    def test_incomplete_schedule_rejected(self):
        dag = small_chain()
        with pytest.raises(ValueError):
            play_schedule(dag, capacity=4, schedule=[2])

    def test_schedule_with_input_rejected(self):
        dag = small_chain()
        with pytest.raises(ValueError):
            play_schedule(dag, capacity=4, schedule=[0, 2, 3])

    def test_lru_vs_belady(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        belady = simulate_topological(dag, capacity=24, eviction="belady")
        lru = simulate_topological(dag, capacity=24, eviction="lru")
        # Belady (clairvoyant) should never be worse than LRU here.
        assert belady.io_operations <= lru.io_operations

    def test_unknown_eviction_rejected(self):
        dag = small_chain()
        with pytest.raises(ValueError):
            play_schedule(dag, capacity=4, eviction="fifo")

    def test_greedy_schedule_is_legal_and_complete(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        sched = greedy_schedule(dag, capacity=24)
        assert sorted(sched) == sorted(
            v.vid for v in dag.vertices() if dag.predecessors(v.vid)
        )
        res = play_schedule(dag, capacity=24, schedule=sched)
        assert res.io_operations > 0

    def test_greedy_not_worse_than_topological_much(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        topo = simulate_topological(dag, capacity=24).io_operations
        greedy = play_schedule(dag, 24, schedule=greedy_schedule(dag, 24)).io_operations
        assert greedy <= 2 * topo

    def test_matmul_large_memory_touches_each_value_once(self):
        dag = matmul_dag(3, 3, 3)
        res = simulate_topological(dag, capacity=1000)
        # With memory larger than the whole DAG: load every input once, store
        # every output once — no spills.
        assert res.loads == len(dag.inputs())
        assert res.stores == len(dag.outputs())

    def test_result_describe(self):
        res = simulate_topological(small_chain(), capacity=4)
        assert "Q=3" in res.describe()


class TestSPartition:
    def test_greedy_partition_valid(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        part = greedy_s_partition(dag, capacity=20)
        validate_s_partition(dag, part)  # raises on violation
        assert part.num_blocks >= 1

    def test_partition_covers_all_vertices(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        part = greedy_s_partition(dag, capacity=16)
        covered = sorted(v for block in part.blocks for v in block)
        assert covered == list(range(dag.num_vertices))

    def test_more_capacity_fewer_blocks(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        small = greedy_s_partition(dag, capacity=12).num_blocks
        large = greedy_s_partition(dag, capacity=48).num_blocks
        assert large <= small

    def test_natural_dominator_is_dominator(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        part = greedy_s_partition(dag, capacity=16)
        for block in part.blocks[:10]:
            dom = natural_dominator(dag, block)
            assert dag.is_dominator(dom, block)

    def test_validate_rejects_duplicate_vertex(self):
        dag = small_chain()
        bad = SPartition(blocks=[[0, 1, 2, 3], [3]], capacity=4)
        with pytest.raises(ValueError):
            validate_s_partition(dag, bad)

    def test_validate_rejects_missing_vertex(self):
        dag = small_chain()
        bad = SPartition(blocks=[[0, 1, 2]], capacity=4)
        with pytest.raises(ValueError):
            validate_s_partition(dag, bad)

    def test_validate_rejects_oversized_dominator(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        whole = SPartition(blocks=[list(range(dag.num_vertices))], capacity=2)
        with pytest.raises(ValueError):
            validate_s_partition(dag, whole)

    def test_h_lower_bound(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        part = greedy_s_partition(dag, capacity=16)
        h = h_lower_bound(dag, part)
        assert h >= 1.0
        assert h <= dag.num_vertices

    def test_capacity_must_be_positive(self, tiny_params):
        dag = direct_conv_dag(tiny_params)
        with pytest.raises(ValueError):
            greedy_s_partition(dag, capacity=0)
