"""Tests for configurations, search spaces and feature extraction."""


import numpy as np
import pytest

from repro.conv import ConvParams, Layout
from repro.core.autotune import (
    Configuration,
    FEATURE_NAMES,
    Measurer,
    SearchSpace,
    build_profile,
    feature_matrix,
    feature_vector,
)
from repro.gpusim import V100


@pytest.fixture
def conv3():
    """AlexNet conv3: the layer Table 2 tunes."""
    return ConvParams.square(13, 256, 384, kernel=3, stride=1, padding=1)


@pytest.fixture
def direct_space(conv3):
    return SearchSpace(conv3, V100, "direct", pruned=True)


def _config(**kw):
    base = dict(
        algorithm="direct",
        tile_x=13,
        tile_y=13,
        tile_z=4,
        threads_x=13,
        threads_y=1,
        threads_z=4,
        smem_per_block=16 * 1024,
    )
    base.update(kw)
    return Configuration(**base)


class TestConfiguration:
    def test_threads_per_block(self):
        assert _config().threads_per_block == 52

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError):
            _config(algorithm="fft")

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            _config(tile_x=0)

    def test_invalid_unroll(self):
        with pytest.raises(ValueError):
            _config(unroll=3)

    def test_invalid_loop_order(self):
        with pytest.raises(ValueError):
            _config(loop_order="abc")

    def test_layout_coercion(self):
        assert _config(layout="HWC").layout is Layout.HWC

    def test_key_distinguishes_unroll(self):
        assert _config(unroll=2).key() != _config(unroll=4).key()

    def test_describe(self):
        assert "tile=13x13x4" in _config().describe()

    def test_as_dict_roundtrip(self):
        c = _config(layout="CWH", unroll=8)
        assert Configuration(**c.as_dict()) == c


class TestBuildProfile:
    def test_basic(self, conv3):
        prof = build_profile(_config(), conv3, V100)
        assert prof.smem_per_block == 16 * 1024
        assert prof.threads_per_block == 52

    def test_rejects_oversized_smem(self, conv3):
        with pytest.raises(ValueError):
            build_profile(_config(smem_per_block=1024 * 1024), conv3, V100)

    def test_rejects_working_set_overflow(self, conv3):
        # A 13x13x384 tile cannot fit in 8 KiB of shared memory.
        cfg = _config(tile_z=384, smem_per_block=8 * 1024, threads_z=1)
        with pytest.raises(ValueError):
            build_profile(cfg, conv3, V100)

    def test_rejects_winograd_for_strided(self, strided_params):
        cfg = _config(algorithm="winograd", tile_x=1, tile_y=1, tile_z=1, threads_x=1, threads_z=1)
        with pytest.raises(ValueError):
            build_profile(cfg, strided_params, V100)

    def test_unroll_affects_efficiency(self, conv3):
        p4 = build_profile(_config(unroll=4), conv3, V100)
        p1 = build_profile(_config(unroll=1), conv3, V100)
        assert p1.compute_efficiency < p4.compute_efficiency

    def test_loop_order_affects_coalescing(self, conv3):
        good = build_profile(_config(loop_order="zyx"), conv3, V100)  # ends in x = CHW contiguous
        bad = build_profile(_config(loop_order="yxz"), conv3, V100)
        assert bad.coalescing < good.coalescing


class TestMeasurer:
    def test_measure_caches(self, conv3):
        m = Measurer(conv3, V100)
        c = _config()
        t1 = m.time_seconds(c)
        t2 = m.time_seconds(c)
        assert t1 == t2
        assert m.num_measurements == 1

    def test_feasibility(self, conv3):
        m = Measurer(conv3, V100)
        assert m.is_feasible(_config())
        assert not m.is_feasible(_config(tile_z=384, smem_per_block=8 * 1024, threads_z=1))

    def test_gflops_positive(self, conv3):
        m = Measurer(conv3, V100)
        assert m.gflops(_config()) > 0


class TestSearchSpace:
    def test_pruned_smaller_than_full(self, conv3):
        full = SearchSpace(conv3, V100, "direct", pruned=False)
        pruned = SearchSpace(conv3, V100, "direct", pruned=True)
        assert 0 < pruned.size() < full.size()

    def test_pruning_ratio_in_paper_range(self, conv3):
        """Table 2 reports the ATE domain at roughly 20–55% of the TVM space."""
        full = SearchSpace(conv3, V100, "direct", pruned=False)
        pruned = SearchSpace(conv3, V100, "direct", pruned=True)
        ratio = pruned.size() / full.size()
        assert 0.1 < ratio < 0.6

    def test_random_configuration_in_space(self, direct_space, pyrng):
        for _ in range(25):
            cfg = direct_space.random_configuration(pyrng)
            assert direct_space.contains(cfg)

    def test_sample_count(self, direct_space, pyrng):
        assert len(direct_space.sample(pyrng, 10)) == 10

    def test_neighbor_stays_in_space(self, direct_space, pyrng):
        cfg = direct_space.random_configuration(pyrng)
        for _ in range(30):
            cfg = direct_space.neighbor(cfg, pyrng)
            assert direct_space.contains(cfg)

    def test_neighbor_changes_something(self, direct_space, pyrng):
        cfg = direct_space.random_configuration(pyrng)
        changed = sum(direct_space.neighbor(cfg, pyrng).key() != cfg.key() for _ in range(10))
        assert changed >= 8

    def test_pruned_tiles_satisfy_table1(self, conv3, pyrng):
        space = SearchSpace(conv3, V100, "direct", pruned=True)
        r = conv3.reuse_factor
        for _ in range(40):
            c = space.random_configuration(pyrng)
            sb = c.smem_per_block // V100.dtype_size
            assert c.tile_x * c.tile_y * c.tile_z <= sb
            assert c.tile_z <= (sb / r) ** 0.5 + 1e-9
            assert c.tile_x * c.tile_y <= (sb * r) ** 0.5 + 1e-9
            assert c.smem_per_block <= V100.shared_mem_per_sm // 2

    def test_contains_rejects_wrong_algorithm(self, direct_space):
        cfg = _config(algorithm="winograd", tile_x=13, tile_y=13, tile_z=4)
        assert not direct_space.contains(cfg)

    def test_contains_rejects_non_divisor_tile(self, direct_space):
        assert not direct_space.contains(_config(tile_x=5, threads_x=5))

    def test_winograd_space(self, conv3, pyrng):
        space = SearchSpace(conv3, V100, "winograd", pruned=True)
        cfg = space.random_configuration(pyrng)
        assert cfg.algorithm == "winograd"
        assert cfg.e in (2, 3, 4)

    def test_winograd_space_rejects_strided(self, strided_params):
        with pytest.raises(ValueError):
            SearchSpace(strided_params, V100, "winograd")

    def test_describe(self, direct_space):
        assert "pruned" in direct_space.describe()


class TestFeatures:
    def test_vector_length_matches_names(self, conv3):
        v = feature_vector(_config(), conv3, V100)
        assert v.shape == (len(FEATURE_NAMES),)

    def test_matrix_shape(self, conv3):
        m = feature_matrix([_config(), _config(unroll=2)], conv3, V100)
        assert m.shape == (2, len(FEATURE_NAMES))

    def test_empty_matrix(self, conv3):
        assert feature_matrix([], conv3, V100).shape == (0, len(FEATURE_NAMES))

    def test_features_finite(self, conv3, pyrng):
        space = SearchSpace(conv3, V100, "direct", pruned=True)
        m = feature_matrix(space.sample(pyrng, 20), conv3, V100)
        assert np.all(np.isfinite(m))

    def test_different_configs_different_features(self, conv3):
        a = feature_vector(_config(), conv3, V100)
        b = feature_vector(_config(tile_z=8, threads_z=1), conv3, V100)
        assert not np.allclose(a, b)
