"""Tuning-service throughput — coalescing + packing vs sequential tuning.

A production tuning tier serves many concurrent requests whose layers repeat
heavily (model zoos share ResNet-style shapes).  Two workloads, each
answered two ways and gated on bit-identity plus a wall-clock floor:

* **homogeneous** — a mixed 16-request ATE workload (5 distinct
  (layer, algorithm) problems, realistic duplication);
* **mixed-algorithm** — 16 requests spread over six distinct
  (problem, tuner) combinations covering *every* search algorithm in the
  repository (ATE, TVM-style, random, simulated annealing, parallel
  tempering, genetic), the way concurrent clients running different tuners
  would hit one service.  Heterogeneous sessions share scheduling rounds, so
  e.g. the sequential SA chain's one-configuration proposals ride inside the
  other sessions' packed executor batches.

A third workload gates the **streaming worker pool**: a duplicate-heavy
multi-shard workload (each problem requested under several seeds, rotated so
the variants land in different shards) answered once by the merge-at-end
batch pool and once by the streaming pool; cross-shard record exchange must
cut the total measurement count strictly (and deterministically — both legs
run the serial interleaving).

The ``sequential per-request`` leg is the pre-service flow — one direct
``tune()`` per request (:meth:`TuningRequest.tune_direct`), no shared state,
so duplicated requests re-tune from scratch.  The service must be at least
3x faster on each workload while returning bit-identical results for every
request.  Both tests write machine-readable ``BENCH_*.json`` telemetry for
CI's perf-trajectory artifacts.
"""

from __future__ import annotations

import os
import warnings

import pytest

from conftest import emit, write_bench_json, write_obs_json
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.obs import MonotonicClock, Observability
from repro.service import TuningRequest, TuningService, TuningWorkerPool

BUDGET = 48
#: best-of rounds per leg — three because container CPU quotas can throttle
#: a single round of either leg and flip a 3x+ ratio under the floor.
ROUNDS = 3

#: 5 distinct problems, duplicated into a mixed 16-request workload the way
#: concurrent clients tuning overlapping models would submit them.
_DISTINCT = [
    (ConvParams.square(28, 128, 128, kernel=3, stride=1, padding=1), "direct"),
    (ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1), "direct"),
    (ConvParams.square(16, 32, 48, kernel=3, stride=1, padding=1), "direct"),
    (ConvParams.square(28, 128, 128, kernel=3, stride=1, padding=1), "winograd"),
    (ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1), "direct"),
]
_MIX = [0, 1, 0, 2, 3, 1, 0, 4, 1, 3, 2, 0, 1, 3, 4, 2]  # 16 requests

#: 6 distinct (problem, algorithm, tuner) combinations — one per search
#: algorithm in the repository — duplicated into a 16-request workload.
_DISTINCT_TUNERS = [
    (ConvParams.square(28, 128, 128, kernel=3, stride=1, padding=1), "direct", "ate", True),
    (ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1), "direct", "random", False),
    (ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1), "direct", "sa_tempering", False),
    (ConvParams.square(16, 32, 48, kernel=3, stride=1, padding=1), "direct", "genetic", False),
    (ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1), "direct", "simulated_annealing", False),
    (ConvParams.square(28, 128, 128, kernel=3, stride=1, padding=1), "winograd", "tvm_style", False),
]
_MIX_TUNERS = [0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 0, 1, 5, 5, 0]  # 16 requests

#: 4 problems for the multi-shard worker-pool workload; small enough that
#: the merge-at-end reference leg stays cheap.
_POOL_PROBLEMS = [
    ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1),
    ConvParams.square(16, 32, 48, kernel=3, stride=1, padding=1),
    ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1),
    ConvParams.square(11, 24, 40, kernel=3, stride=1, padding=1),
]
_POOL_SEED_ROWS = 3  # each problem requested under 3 different seeds


def _requests(spec):
    return [
        TuningRequest(
            _DISTINCT[i][0],
            spec,
            algorithm=_DISTINCT[i][1],
            max_measurements=BUDGET,
            seed=1,
        )
        for i in _MIX
    ]


def _mixed_tuner_requests(spec):
    return [
        TuningRequest(
            _DISTINCT_TUNERS[i][0],
            spec,
            algorithm=_DISTINCT_TUNERS[i][1],
            max_measurements=BUDGET,
            seed=1,
            tuner=_DISTINCT_TUNERS[i][2],
            pruned=_DISTINCT_TUNERS[i][3],
        )
        for i in _MIX_TUNERS
    ]


#: benchmarks are a real timing edge (REPRO701): one monotonic clock,
#: read only here.
_CLOCK = MonotonicClock()


def _best_of(fn, rounds=ROUNDS):
    best_time, result = float("inf"), None
    for _ in range(rounds):
        start = _CLOCK.now()
        result = fn()
        best_time = min(best_time, _CLOCK.now() - start)
    return best_time, result


def _trajectory(result):
    return [(t.config.key(), t.time_seconds) for t in result.trials]


def _run_workload(requests):
    """Time the sequential-per-request and service legs of one workload."""

    def sequential():
        return [request.tune_direct() for request in requests]

    last_service = {}

    def service():
        svc = TuningService()
        last_service["svc"] = svc  # deterministic: every round has equal stats
        return svc.tune(requests)

    t_sequential, sequential_results = _best_of(sequential)
    t_service, service_results = _best_of(service)
    stats = last_service["svc"].stats

    # Exactness: every request's best configuration is bit-identical, and
    # every freshly tuned (non-database-served) result reproduces the direct
    # run's full trajectory.
    for request, got, want in zip(requests, service_results, sequential_results):
        assert got.best_config == want.best_config, "service best config diverges"
        assert got.best_time == want.best_time, "service best time diverges"
        if not got.from_cache:
            assert _trajectory(got) == _trajectory(want), (
                f"service trajectory diverges for {request.describe()}"
            )
    return t_sequential, t_service, stats


def _speedup_table(title, requests, t_sequential, t_service):
    table = ResultTable(
        title, columns=["pipeline", "ms", "ms_per_request", "speedup"]
    )
    for name, t in (
        ("sequential per-request", t_sequential),
        ("tuning service", t_service),
    ):
        table.add_row(
            pipeline=name,
            ms=t * 1e3,
            ms_per_request=t * 1e3 / len(requests),
            speedup=t_sequential / t,
        )
    return table


def _gate_speedup(speedup, floor=3.0):
    # The coalescing accounting always gates (it is deterministic); the
    # wall-clock ratio gates by default but BENCH_SPEEDUP_SOFT=1 downgrades a
    # shortfall to a warning for shared CI runners, mirroring
    # bench_batched_measurement.py.
    if speedup < floor:
        message = f"service speedup is {speedup:.1f}x, below the {floor}x floor"
        if os.environ.get("BENCH_SPEEDUP_SOFT") == "1":
            warnings.warn(message, stacklevel=2)
        else:
            pytest.fail(message)


def run_tuning_service_throughput(spec):
    requests = _requests(spec)
    t_sequential, t_service, stats = _run_workload(requests)
    table = _speedup_table(
        f"Tuning service throughput ({spec.name}, {len(requests)} requests, "
        f"{len(_DISTINCT)} distinct, budget {BUDGET})",
        requests,
        t_sequential,
        t_service,
    )
    return table, t_sequential, t_service, stats


def run_mixed_algorithm_throughput(spec):
    requests = _mixed_tuner_requests(spec)
    t_sequential, t_service, stats = _run_workload(requests)
    table = _speedup_table(
        f"Mixed-algorithm tuning service ({spec.name}, {len(requests)} requests, "
        f"{len(_DISTINCT_TUNERS)} distinct tuner sessions, budget {BUDGET})",
        requests,
        t_sequential,
        t_service,
    )
    return table, t_sequential, t_service, stats


@pytest.mark.benchmark(group="tuning-service")
def test_tuning_service_throughput(benchmark, gpu_v100):
    table, t_sequential, t_service, stats = benchmark.pedantic(
        run_tuning_service_throughput, args=(gpu_v100,), rounds=1, iterations=1
    )
    speedup = t_sequential / t_service
    emit(render_table(table, precision=2))
    emit(
        f"service speedup: {speedup:.1f}x over sequential per-request tuning; "
        f"{stats.describe()}"
    )
    write_bench_json(
        "tuning_service",
        gpu=gpu_v100.name,
        requests=len(_MIX),
        distinct=len(_DISTINCT),
        budget=BUDGET,
        sequential_seconds=t_sequential,
        service_seconds=t_service,
        speedup=speedup,
        measurements=stats.measurements,
        executor_calls=stats.executor_calls,
        packed_configs=stats.packed_configs,
        coalesced=stats.coalesced,
        rounds=stats.rounds,
    )
    assert stats.tuning_runs == len(_DISTINCT), "duplicates did not coalesce"
    assert stats.coalesced == len(_MIX) - len(_DISTINCT)
    _gate_speedup(speedup)


def _pool_requests(spec):
    """Duplicate-heavy multi-shard workload: 4 problems x 3 seeds + repeats.

    Seed rows rotate the problems so the seed variants of each problem land
    in *different* shards (round-robin placement over distinct requests) —
    shard B's backlog holds variants of problems shard A is tuning.  A final
    wave repeats the first row's requests verbatim (identical requests:
    same-shard coalescing / database serving).
    """
    requests = []
    for row in range(_POOL_SEED_ROWS):
        for slot in range(len(_POOL_PROBLEMS)):
            problem = _POOL_PROBLEMS[(slot + row) % len(_POOL_PROBLEMS)]
            requests.append(
                TuningRequest(
                    problem, spec, algorithm="direct",
                    max_measurements=BUDGET, seed=row + 1,
                )
            )
    return requests + requests[: len(_POOL_PROBLEMS)]


def run_streaming_pool_savings(spec):
    """Time + account the streamed pool against the merge-at-end pool.

    Both legs run the deterministic serial interleaving (``use_processes=
    False``), so the measurement counts are exact, reproducible numbers —
    the hard gate below is an equality-grade comparison, not a bound.
    """
    requests = _pool_requests(spec)

    merge_pool = TuningWorkerPool(
        num_workers=len(_POOL_PROBLEMS), streaming=False, use_processes=False
    )
    t_merge, merge_results = _best_of(lambda: merge_pool.tune(list(requests)))
    stream_pool = TuningWorkerPool(
        num_workers=len(_POOL_PROBLEMS), streaming=True, admit_window=1,
        use_processes=False,
    )
    t_stream, stream_results = _best_of(lambda: stream_pool.tune(list(requests)))

    # Exactness.  Freshly tuned results reproduce their direct run
    # bit-for-bit; served results carry the keep-better record of the
    # problem's fresh runs — the same record a sequential client of the
    # shared database would have been handed (PR 2 serving semantics).
    best_fresh: dict = {}
    for request, result in zip(requests, stream_results):
        if not result.from_cache:
            assert _trajectory(result) == _trajectory(request.tune_direct()), (
                f"streamed pool trajectory diverges for {request.describe()}"
            )
            key = (request.params, request.algorithm)
            best_fresh[key] = min(
                best_fresh.get(key, float("inf")), result.best_time
            )
    for request, result in zip(requests, stream_results):
        if result.from_cache:
            key = (request.params, request.algorithm)
            assert result.best_time == best_fresh[key], (
                f"served result is not the best known record for "
                f"{request.describe()}"
            )
    return t_merge, t_stream, merge_pool.stats, stream_pool.stats


@pytest.mark.benchmark(group="tuning-service")
def test_streaming_pool_cuts_measurements(benchmark, gpu_v100):
    t_merge, t_stream, merge_stats, stream_stats = benchmark.pedantic(
        run_streaming_pool_savings, args=(gpu_v100,), rounds=1, iterations=1
    )
    saving = merge_stats.measurements / stream_stats.measurements
    speedup = t_merge / t_stream
    requests = _pool_requests(gpu_v100)
    table = ResultTable(
        f"Streaming worker pool ({gpu_v100.name}, {len(requests)} requests, "
        f"{len(_POOL_PROBLEMS)} problems x {_POOL_SEED_ROWS} seeds, "
        f"budget {BUDGET})",
        columns=["pool", "ms", "measurements", "tuning_runs"],
    )
    table.add_row(
        pool="merge-at-end", ms=t_merge * 1e3,
        measurements=merge_stats.measurements, tuning_runs=merge_stats.tuning_runs,
    )
    table.add_row(
        pool="streaming", ms=t_stream * 1e3,
        measurements=stream_stats.measurements, tuning_runs=stream_stats.tuning_runs,
    )
    emit(render_table(table, precision=2))
    emit(
        f"cross-shard streaming: {saving:.2f}x fewer measurements "
        f"({stream_stats.measurements} vs {merge_stats.measurements}), "
        f"{speedup:.1f}x wall-clock; {stream_stats.describe()}"
    )
    write_bench_json(
        "tuning_pool",
        gpu=gpu_v100.name,
        requests=len(requests),
        problems=len(_POOL_PROBLEMS),
        seed_rows=_POOL_SEED_ROWS,
        budget=BUDGET,
        merge_seconds=t_merge,
        streaming_seconds=t_stream,
        merge_measurements=merge_stats.measurements,
        streaming_measurements=stream_stats.measurements,
        measurement_saving=saving,
        speedup=speedup,
        records_streamed=stream_stats.records_streamed,
        records_applied=stream_stats.records_applied,
        tuning_runs=stream_stats.tuning_runs,
        database_hits=stream_stats.database_hits,
    )
    # The tentpole gate: streamed cross-shard serving performs *strictly
    # fewer* total measurements than merge-at-end — deterministically (the
    # serial interleaving has no timing dependence).  One fresh run per
    # problem; every seed variant and repeat is served or coalesced.
    assert stream_stats.measurements < merge_stats.measurements
    assert stream_stats.tuning_runs == len(_POOL_PROBLEMS)
    assert merge_stats.tuning_runs == len(_POOL_PROBLEMS) * _POOL_SEED_ROWS
    assert stream_stats.records_streamed >= len(_POOL_PROBLEMS)
    assert stream_stats.poisoned_envelopes == 0
    _gate_speedup(speedup, floor=2.0)


def run_observability_overhead(spec):
    """Time the service leg with observability off and fully on.

    The enabled leg runs with a real monotonic clock, a live registry and
    the span tracer — the most expensive configuration the observability
    layer has.  Results must stay bit-identical (write-only telemetry) and
    the enabled leg must finish within 5% of the disabled one.
    """
    requests = _requests(spec)

    def disabled():
        return TuningService().tune(list(requests))

    last = {}

    def enabled():
        obs = Observability(clock=MonotonicClock())
        service = TuningService(obs=obs)
        results = service.tune(list(requests))
        last["service"], last["obs"] = service, obs  # deterministic per round
        return results

    t_disabled, disabled_results = _best_of(disabled)
    t_enabled, enabled_results = _best_of(enabled)
    for want, got in zip(disabled_results, enabled_results):
        assert _trajectory(got) == _trajectory(want), (
            "observability perturbed a tuning trajectory"
        )
    snapshot = last["service"].metrics_snapshot().merged(last["obs"].snapshot())
    return t_disabled, t_enabled, snapshot


@pytest.mark.benchmark(group="tuning-service")
def test_observability_overhead(benchmark, gpu_v100):
    t_disabled, t_enabled, snapshot = benchmark.pedantic(
        run_observability_overhead, args=(gpu_v100,), rounds=1, iterations=1
    )
    # >= 1.0 means enabled was not slower at all; the gate allows 5%.
    overhead_ratio = t_disabled / t_enabled
    emit(
        f"observability overhead: disabled {t_disabled * 1e3:.1f}ms vs "
        f"enabled {t_enabled * 1e3:.1f}ms ({overhead_ratio:.3f}x ratio, "
        f"floor 0.95)"
    )
    fill = snapshot.histograms.get("service.pack.fill_ratio")
    assert fill is not None and fill.total > 0, (
        "enabled run recorded no packing fill-ratio observations"
    )
    assert snapshot.counters.get("service.requests") == len(_MIX)
    write_obs_json(
        "tuning_service",
        snapshot,
        gpu=gpu_v100.name,
        requests=len(_MIX),
        budget=BUDGET,
        disabled_seconds=t_disabled,
        enabled_seconds=t_enabled,
        overhead_ratio=overhead_ratio,
    )
    write_bench_json(
        "obs_overhead",
        gpu=gpu_v100.name,
        requests=len(_MIX),
        budget=BUDGET,
        disabled_seconds=t_disabled,
        enabled_seconds=t_enabled,
        overhead_ratio=overhead_ratio,
    )
    _gate_speedup(overhead_ratio, floor=0.95)


@pytest.mark.benchmark(group="tuning-service")
def test_mixed_algorithm_service_throughput(benchmark, gpu_v100):
    table, t_sequential, t_service, stats = benchmark.pedantic(
        run_mixed_algorithm_throughput, args=(gpu_v100,), rounds=1, iterations=1
    )
    speedup = t_sequential / t_service
    emit(render_table(table, precision=2))
    emit(
        f"mixed-algorithm speedup: {speedup:.1f}x over sequential per-request "
        f"tuning; {stats.describe()}"
    )
    write_bench_json(
        "tuning_service_mixed",
        gpu=gpu_v100.name,
        requests=len(_MIX_TUNERS),
        distinct=len(_DISTINCT_TUNERS),
        tuners=sorted({t[2] for t in _DISTINCT_TUNERS}),
        budget=BUDGET,
        sequential_seconds=t_sequential,
        service_seconds=t_service,
        speedup=speedup,
        measurements=stats.measurements,
        executor_calls=stats.executor_calls,
        packed_configs=stats.packed_configs,
        coalesced=stats.coalesced,
        rounds=stats.rounds,
    )
    # Heterogeneous-session accounting: one run per distinct (problem, tuner),
    # every duplicate coalesced, and every lowered configuration executed
    # through a shared packed call.
    assert stats.tuning_runs == len(_DISTINCT_TUNERS), "duplicates did not coalesce"
    assert stats.coalesced == len(_MIX_TUNERS) - len(_DISTINCT_TUNERS)
    assert stats.packed_configs == stats.measurements
    _gate_speedup(speedup)
