"""Tuning-service throughput — coalescing + packing vs sequential tuning.

A production tuning tier serves many concurrent requests whose layers repeat
heavily (model zoos share ResNet-style shapes).  This benchmark answers a
mixed 16-request workload (5 distinct (layer, algorithm) problems, realistic
duplication) two ways:

* ``sequential per-request`` — the pre-service flow: one
  ``AutoTuningEngine.tune`` per request, no shared state, so duplicated
  requests re-tune from scratch;
* ``tuning service`` — one :class:`~repro.service.TuningService`: duplicate
  in-flight requests coalesce onto a single run and the surviving runs'
  measurement batches are packed into shared executor calls.

The service must be at least 3x faster on the workload while returning
bit-identical best configurations for every request.
"""

from __future__ import annotations

import os
import time
import warnings

import pytest

from conftest import emit
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.service import TuningRequest, TuningService

BUDGET = 48
ROUNDS = 2

#: 5 distinct problems, duplicated into a mixed 16-request workload the way
#: concurrent clients tuning overlapping models would submit them.
_DISTINCT = [
    (ConvParams.square(28, 128, 128, kernel=3, stride=1, padding=1), "direct"),
    (ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1), "direct"),
    (ConvParams.square(16, 32, 48, kernel=3, stride=1, padding=1), "direct"),
    (ConvParams.square(28, 128, 128, kernel=3, stride=1, padding=1), "winograd"),
    (ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1), "direct"),
]
_MIX = [0, 1, 0, 2, 3, 1, 0, 4, 1, 3, 2, 0, 1, 3, 4, 2]  # 16 requests


def _requests(spec):
    return [
        TuningRequest(
            _DISTINCT[i][0],
            spec,
            algorithm=_DISTINCT[i][1],
            max_measurements=BUDGET,
            seed=1,
        )
        for i in _MIX
    ]


def _best_of(fn, rounds=ROUNDS):
    best_time, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best_time = min(best_time, time.perf_counter() - start)
    return best_time, result


def run_tuning_service_throughput(spec):
    requests = _requests(spec)

    def sequential():
        return [
            request.make_engine().tune(initial_random=request.initial_random)
            for request in requests
        ]

    last_service = {}

    def service():
        svc = TuningService()
        last_service["svc"] = svc  # deterministic: every round has equal stats
        return svc.tune(requests)

    t_sequential, sequential_results = _best_of(sequential)
    t_service, service_results = _best_of(service)
    stats = last_service["svc"].stats

    # Exactness: every request's best configuration is bit-identical.
    for got, want in zip(service_results, sequential_results):
        assert got.best_config == want.best_config, "service best config diverges"
        assert got.best_time == want.best_time, "service best time diverges"

    table = ResultTable(
        f"Tuning service throughput ({spec.name}, {len(requests)} requests, "
        f"{len(_DISTINCT)} distinct, budget {BUDGET})",
        columns=["pipeline", "ms", "ms_per_request", "speedup"],
    )
    for name, t in (
        ("sequential per-request", t_sequential),
        ("tuning service", t_service),
    ):
        table.add_row(
            pipeline=name,
            ms=t * 1e3,
            ms_per_request=t * 1e3 / len(requests),
            speedup=t_sequential / t,
        )
    return table, t_sequential / t_service, stats


@pytest.mark.benchmark(group="tuning-service")
def test_tuning_service_throughput(benchmark, gpu_v100):
    table, speedup, stats = benchmark.pedantic(
        run_tuning_service_throughput, args=(gpu_v100,), rounds=1, iterations=1
    )
    emit(render_table(table, precision=2))
    emit(
        f"service speedup: {speedup:.1f}x over sequential per-request tuning; "
        f"{stats.describe()}"
    )
    # The coalescing accounting always gates (it is deterministic); the
    # wall-clock ratio gates by default but BENCH_SPEEDUP_SOFT=1 downgrades a
    # shortfall to a warning for shared CI runners, mirroring
    # bench_batched_measurement.py.
    assert stats.tuning_runs == len(_DISTINCT), "duplicates did not coalesce"
    assert stats.coalesced == len(_MIX) - len(_DISTINCT)
    floor = 3.0
    if speedup < floor:
        message = f"service speedup is {speedup:.1f}x, below the {floor}x floor"
        if os.environ.get("BENCH_SPEEDUP_SOFT") == "1":
            warnings.warn(message)
        else:
            pytest.fail(message)
