"""Figure 12 — end-to-end CNN inference: tuned dataflows vs cuDNN.

SqueezeNet, VGG-19, ResNet-18, ResNet-34 and Inception-v3 on the V100 model;
total convolution time of the paper's dataflow (per-layer best template with
the optimality-condition tile) against the cuDNN dispatcher.  The runner
lowers each whole model into a single batched executor call
(``GPUExecutor.run_batch``) rather than timing layers one at a time.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import ResultTable, render_table
from repro.nets import ModelRunner, get_model

MODELS = ("squeezenet", "vgg19", "resnet18", "resnet34", "inception_v3")
PAPER_SPEEDUPS = {
    "SqueezeNet": 2.67,
    "Vgg-19": 1.09,
    "ResNet-18": 1.02,
    "ResNet-34": 1.09,
    "Inception-v3": 1.23,
}


def run_figure12(spec):
    runner = ModelRunner(spec, mode="analytic")
    table = ResultTable(
        f"Figure 12 — end-to-end convolution inference time on {spec.name}",
        columns=["model", "ours_ms", "cudnn_ms", "speedup", "paper_speedup"],
    )
    for name in MODELS:
        model = get_model(name)
        timing = runner.time_model(model)
        table.add_row(
            model=model.name,
            ours_ms=timing.ours_seconds * 1e3,
            cudnn_ms=timing.cudnn_seconds * 1e3,
            speedup=timing.speedup,
            paper_speedup=PAPER_SPEEDUPS[model.name],
        )
    return table


@pytest.mark.benchmark(group="fig12")
def test_fig12_end_to_end_models(benchmark, gpu_v100):
    table = benchmark.pedantic(run_figure12, args=(gpu_v100,), rounds=1, iterations=1)
    emit(render_table(table, precision=2))
    speedups = table.column("speedup")
    # Shape check: never slower than cuDNN end-to-end, and SqueezeNet /
    # Inception-v3 (many small/1x1 layers) gain more than the ResNets, as in
    # the paper.
    assert all(s >= 0.95 for s in speedups)
    rows = {r["model"]: r["speedup"] for r in table.rows}
    assert rows["Inception-v3"] >= rows["ResNet-34"] - 0.05
    assert rows["SqueezeNet"] >= rows["ResNet-18"] - 0.05
