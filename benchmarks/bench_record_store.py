"""RecordStore backends — durable serving at the 1M-record daemon scale.

The tuning daemon keeps one long-lived database: every tuning run appends
its best record, lookups are served from memory, and restarts must recover
exactly what was stored.  This benchmark drives the two
:class:`~repro.core.autotune.store.RecordStore` backends through that
lifecycle at scale:

* ``append`` — 1M effective puts into a :class:`LogStore` (50 improvement
  rounds over 20k problems, every put changes the winner).  Dead-ratio
  compaction must keep this O(1) amortised: the second half of the workload
  may not be materially slower than the first, and the log may not grow
  with history.
* ``recovery`` — reopen the store (snapshot fold + log-tail replay) and
  require the recovered record set to be *exactly* the pre-close effective
  set, including after a torn trailing append (the mid-append crash
  signature).
* ``durable put`` — per-put durability: LogStore's append+flush vs the
  whole-file rewrite a :class:`JsonMapStore` needs for the same guarantee.
* ``serve`` — lock-free lookup latency must not depend on the backend.

Correctness gates (recovered-set equality, bounded log, backend-identical
serving) always fail hard; wall-clock floors soften to warnings under
``BENCH_SPEEDUP_SOFT=1``.
"""

from __future__ import annotations

import dataclasses
import os
import random
import warnings

import pytest

from conftest import emit, write_bench_json, write_obs_json
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.core.autotune import JsonMapStore, LogStore, SearchSpace
from repro.core.autotune.store import TuningRecord
from repro.obs import MetricsRegistry, MonotonicClock

LAYER = ConvParams.square(13, 64, 96, kernel=3, stride=1, padding=1)
LIVE_KEYS = 20_000
ROUNDS = 50
TOTAL_APPENDS = LIVE_KEYS * ROUNDS  # 1M effective puts
DURABLE_PUTS = 500
SERVE_LOOKUPS = 200_000

#: benchmarks are a real timing edge (REPRO701): one monotonic clock,
#: read only here.
_CLOCK = MonotonicClock()


def _base_records(spec):
    """One record per live problem key (distinct batch sizes)."""
    space = SearchSpace(LAYER, spec, "direct", pruned=True)
    config = space.random_configuration(random.Random(0))
    return [
        TuningRecord(
            params=dataclasses.replace(LAYER, batch=i + 1),
            gpu=spec.name,
            algorithm="direct",
            config=config,
            time_seconds=1.0,
            gflops=1.0,
        )
        for i in range(LIVE_KEYS)
    ]


def _canonical(store):
    return sorted(
        (r.key(), r.conditions(), r.time_seconds, r.budget) for r in store.scan()
    )


def _soft_floor(name, value, floor):
    if value >= floor:
        return
    message = f"{name} is {value:.3g}, below the {floor} floor"
    if os.environ.get("BENCH_SPEEDUP_SOFT") == "1":
        warnings.warn(message, stacklevel=2)
    else:
        pytest.fail(message)


def run_record_store_benchmark(spec, tmp_path):
    registry = MetricsRegistry()
    base = _base_records(spec)
    log_path = os.path.join(tmp_path, "bench.log")
    store = LogStore(log_path)
    store.attach_metrics(registry.scope("db.store"))

    # -- append: 1M effective puts, every round improves every key ------- #
    half_times = [0.0, 0.0]
    for round_index in range(ROUNDS):
        batch = [
            dataclasses.replace(record, time_seconds=1.0 / (round_index + 1))
            for record in base
        ]
        start = _CLOCK.now()
        for record in batch:
            store.append(record)
        half_times[round_index * 2 // ROUNDS] += _CLOCK.now() - start
    t_append = sum(half_times)
    append_per_second = TOTAL_APPENDS / t_append
    append_amortized_ratio = half_times[0] / half_times[1]

    counters = registry.snapshot().counters
    info = store.describe()
    # Hard gates: compaction actually ran and kept the log O(live), not
    # O(history) — 1M appends may not leave 1M log entries behind.
    assert len(store) == LIVE_KEYS
    assert counters["db.store.appends_effective"] == TOTAL_APPENDS
    assert counters["db.store.compactions"] >= 1, "dead-ratio compaction never ran"
    assert info["log_entries"] <= 3 * LIVE_KEYS, (
        f"log holds {info['log_entries']} entries for {LIVE_KEYS} live records; "
        f"compaction is not bounding the tail"
    )

    # -- recovery: reopen and demand the exact effective set ------------- #
    expected = _canonical(store)
    revision = store.revision
    store.close()
    start = _CLOCK.now()
    recovered = LogStore(log_path)
    t_recover = _CLOCK.now() - start
    recovery_per_second = LIVE_KEYS / t_recover
    assert _canonical(recovered) == expected, "recovered set != pre-close set"
    assert recovered.revision == revision

    # Torn trailing append (mid-append crash): the in-flight put is lost,
    # everything else recovers exactly.
    recovered.close()
    with open(log_path, "ab") as fh:
        fh.write(b'{"rev": 0, "record": {"par')
    after_crash = LogStore(log_path)
    assert _canonical(after_crash) == expected, "torn tail corrupted recovery"

    # -- serve: lock-free lookups must not depend on the backend --------- #
    map_store = JsonMapStore()
    for record in after_crash.scan():
        map_store.append(record)
    keys = [record.key() for record in base[:: LIVE_KEYS // 1000 or 1]]
    timings = {}
    for name, backend in (("map", map_store), ("log", after_crash)):
        start = _CLOCK.now()
        for i in range(SERVE_LOOKUPS):
            backend.serve(keys[i % len(keys)])
        timings[name] = _CLOCK.now() - start
    serve_map_vs_log = timings["map"] / timings["log"]
    sample = random.Random(1).sample(base, 32)
    for record in sample:  # hard gate: identical answers from both backends
        assert map_store.serve(record.key()) == after_crash.serve(record.key())
    after_crash.close()

    # -- durable puts: append+flush vs whole-file rewrite ---------------- #
    durable = base[:DURABLE_PUTS]
    log2 = LogStore(os.path.join(tmp_path, "durable.log"))
    start = _CLOCK.now()
    for record in durable:
        log2.append(record)
    t_log_durable = _CLOCK.now() - start
    log2.close()
    map2 = JsonMapStore(path=os.path.join(tmp_path, "durable.json"))
    start = _CLOCK.now()
    for record in durable:
        map2.append(record)
        map2.snapshot()  # the map file's only durability story
    t_map_durable = _CLOCK.now() - start
    durable_put_speedup = t_map_durable / t_log_durable

    table = ResultTable(
        f"RecordStore backends ({spec.name}, {TOTAL_APPENDS:,} appends over "
        f"{LIVE_KEYS:,} live keys)",
        columns=["phase", "seconds", "per_second"],
    )
    table.add_row(phase="log append (1M)", seconds=t_append, per_second=append_per_second)
    table.add_row(
        phase="log recovery", seconds=t_recover, per_second=recovery_per_second
    )
    table.add_row(
        phase=f"durable puts x{DURABLE_PUTS} (log)",
        seconds=t_log_durable,
        per_second=DURABLE_PUTS / t_log_durable,
    )
    table.add_row(
        phase=f"durable puts x{DURABLE_PUTS} (map)",
        seconds=t_map_durable,
        per_second=DURABLE_PUTS / t_map_durable,
    )
    return (
        table,
        {
            "live_keys": LIVE_KEYS,
            "total_appends": TOTAL_APPENDS,
            "append_seconds": t_append,
            "append_per_second": append_per_second,
            "append_amortized_ratio": append_amortized_ratio,
            "compactions": counters["db.store.compactions"],
            "log_entries_after": info["log_entries"],
            "recovery_seconds": t_recover,
            "recovery_per_second": recovery_per_second,
            "durable_put_speedup": durable_put_speedup,
            "serve_lookups": SERVE_LOOKUPS,
            "serve_map_seconds": timings["map"],
            "serve_log_seconds": timings["log"],
            "serve_map_vs_log": serve_map_vs_log,
        },
        registry.snapshot(),
    )


@pytest.mark.benchmark(group="record_store")
def test_record_store_scale(benchmark, gpu_v100, tmp_path):
    table, stats, snapshot = benchmark.pedantic(
        run_record_store_benchmark, args=(gpu_v100, tmp_path), rounds=1, iterations=1
    )
    emit(render_table(table, precision=2))
    emit(
        f"append: {stats['append_per_second']:,.0f}/s "
        f"(amortized ratio {stats['append_amortized_ratio']:.2f}, "
        f"{stats['compactions']} compactions), "
        f"recovery: {stats['recovery_per_second']:,.0f} records/s, "
        f"durable put speedup: {stats['durable_put_speedup']:.0f}x, "
        f"serve map/log: {stats['serve_map_vs_log']:.2f}"
    )
    write_bench_json("record_store", gpu=gpu_v100.name, **stats)
    write_obs_json(
        "record_store",
        snapshot,
        live_keys=LIVE_KEYS,
        total_appends=TOTAL_APPENDS,
    )
    # Wall-clock floors (soft under BENCH_SPEEDUP_SOFT=1); the recovered-set
    # equality, log-bound and backend-identity asserts above always gate.
    _soft_floor("append_per_second", stats["append_per_second"], 10_000)
    _soft_floor(
        "append_amortized_ratio", stats["append_amortized_ratio"], 0.5
    )
    _soft_floor("recovery_per_second", stats["recovery_per_second"], 2_000)
    _soft_floor("durable_put_speedup", stats["durable_put_speedup"], 10.0)
    _soft_floor("serve_map_vs_log", stats["serve_map_vs_log"], 0.6)
