"""Ablation A2 — value of the learned cost model.

Compares the full ATE (gradient-boosted cost model guiding the random walks)
against the same engine with the model disabled (walks accept every move,
which degenerates to randomised local search) on one AlexNet layer.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import ResultTable, render_table
from repro.core.autotune import AutoTuningEngine, CostModel, RandomSearchTuner
from repro.nets import alexnet

BUDGET = 128


class _DisabledCostModel(CostModel):
    """A cost model that never trains — the explorer then walks blindly."""

    def fit(self, features, runtimes):  # noqa: D401 - interface override
        self._num_samples = len(list(runtimes))
        self._model = None
        return False


def run_ablation(spec):
    params = alexnet().layer("conv2").params()
    table = ResultTable(
        f"Ablation — learned cost model (AlexNet conv2, {spec.name})",
        columns=["variant", "best_gflops", "meas_to_95pct"],
    )
    with_model = AutoTuningEngine(params, spec, "direct", max_measurements=BUDGET, seed=23).tune()
    without_model = AutoTuningEngine(
        params,
        spec,
        "direct",
        max_measurements=BUDGET,
        seed=23,
        cost_model=_DisabledCostModel(),
    ).tune()
    random_search = RandomSearchTuner(params, spec, "direct", max_measurements=BUDGET, seed=23, pruned=True).tune()
    for name, res in (
        ("ATE (GBT cost model)", with_model),
        ("ATE (no cost model)", without_model),
        ("random search (pruned domain)", random_search),
    ):
        table.add_row(
            variant=name,
            best_gflops=res.best_gflops,
            meas_to_95pct=res.measurements_to_reach(0.95),
        )
    return table, with_model, without_model, random_search


@pytest.mark.benchmark(group="ablation")
def test_ablation_cost_model(benchmark, gpu_v100):
    table, with_model, without_model, random_search = benchmark.pedantic(
        run_ablation, args=(gpu_v100,), rounds=1, iterations=1
    )
    emit(render_table(table, precision=2))
    # At these small measurement budgets random sampling over the pruned
    # domain is already a strong baseline (the domain itself is the paper's
    # main contribution), so the assertions only require the guided engine to
    # stay in the same performance band as the unguided variants; the printed
    # table is the quantitative record.
    assert with_model.best_gflops >= 0.8 * without_model.best_gflops
    assert with_model.best_gflops >= 0.7 * random_search.best_gflops
