"""Tuning daemon — crash recovery and re-serving at journal scale.

The always-on daemon's restart story has two costs that must stay flat as
the journal grows:

* ``recovery`` — a restarted daemon folds its request journal (snapshot +
  log-tail replay) before serving.  We synthesize a 10k-entry journal of
  completed requests (realistic result payloads) and require the fold to
  sustain a floor of entries/second, on both the replay-everything path
  (SIGKILL: no snapshot) and the post-drain path (snapshot, header-only
  tail).
* ``re-serve`` — a recovered daemon answers journaled requests from the
  journal, **never** by re-tuning.  We tune a workload through a live
  daemon, SIGKILL it, restart, and re-request everything: the results must
  be bit-identical and the restarted daemon's measurement count must be
  exactly zero (hard gate, never softened), with re-serving a large
  multiple faster than the original tuning.

Correctness gates (zero re-measurement, bit-identity, exact entry counts)
always fail hard; wall-clock floors soften to warnings under
``BENCH_SPEEDUP_SOFT=1``.
"""

from __future__ import annotations

import os
import warnings

import pytest

from conftest import emit, write_bench_json
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.obs import MonotonicClock
from repro.service import (
    DaemonClient,
    FakeTransport,
    RequestJournal,
    TuningDaemon,
    TuningRequest,
    request_id,
    request_to_wire,
    result_to_wire,
)

LAYER = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)
JOURNAL_ENTRIES = 10_000
SERVE_REQUESTS = 8
TUNE_BUDGET = 24

#: benchmarks are a real timing edge (REPRO701): one monotonic clock,
#: read only here.
_CLOCK = MonotonicClock()


def _request(spec, seed, budget=TUNE_BUDGET):
    return TuningRequest(
        LAYER, spec, max_measurements=budget, seed=seed, pruned=False, tuner="random"
    )


def _soft_floor(name, value, floor):
    if value >= floor:
        return
    message = f"{name} is {value:.3g}, below the {floor} floor"
    if os.environ.get("BENCH_SPEEDUP_SOFT") == "1":
        warnings.warn(message, stacklevel=2)
    else:
        pytest.fail(message)


def _trials(result):
    return [(t.index, t.config.as_dict(), t.time_seconds, t.gflops) for t in result.trials]


def _synthesize_journal(path, spec, result_wire):
    """10k completed requests, journaled through the real event API."""
    journal = RequestJournal(path, snapshot_min_entries=10**9)  # no auto-snap
    request_wire = request_to_wire(_request(spec, seed=0))
    start = _CLOCK.now()
    for i in range(JOURNAL_ENTRIES):
        rid = f"{i:032d}"
        journal.accept(rid, request_wire)
        journal.mark_running(rid)
        journal.complete(rid, result_wire)
    t_write = _CLOCK.now() - start
    return journal, t_write


def run_daemon_benchmark(spec, tmp_path):
    # One real tuned result as the journaled payload (realistic line size).
    reference = _request(spec, seed=0).tune_direct()
    result_wire = result_to_wire(reference)

    # -- recovery: fold a 10k-entry journal ------------------------------ #
    log_path = os.path.join(tmp_path, "requests.log")
    journal, t_write = _synthesize_journal(log_path, spec, result_wire)
    journal.close()  # SIGKILL-equivalent: full log tail, no snapshot
    start = _CLOCK.now()
    recovered = RequestJournal(log_path)
    t_recover_log = _CLOCK.now() - start
    assert len(recovered) == JOURNAL_ENTRIES
    assert all(e.status == "done" for e in recovered.states().values())
    recovery_per_second = JOURNAL_ENTRIES / t_recover_log

    # Post-drain path: snapshot compaction, then a header-only tail.
    recovered.snapshot()
    recovered.close()
    start = _CLOCK.now()
    compacted = RequestJournal(log_path)
    t_recover_snap = _CLOCK.now() - start
    assert len(compacted) == JOURNAL_ENTRIES
    compacted.close()
    snap_recovery_per_second = JOURNAL_ENTRIES / t_recover_snap

    # -- re-serve: tune, SIGKILL, restart, re-request everything --------- #
    daemon_path = os.path.join(tmp_path, "daemon.log")
    daemon = TuningDaemon(daemon_path)
    client = DaemonClient(FakeTransport(daemon))
    requests = [_request(spec, seed=seed) for seed in range(SERVE_REQUESTS)]
    start = _CLOCK.now()
    rids = [client.submit(request) for request in requests]
    originals = [_trials(client.result(rid)) for rid in rids]
    t_tune = _CLOCK.now() - start
    measured = daemon.service.stats.measurements
    assert measured == SERVE_REQUESTS * TUNE_BUDGET
    daemon.kill()

    start = _CLOCK.now()
    restarted = TuningDaemon(daemon_path)
    t_restart = _CLOCK.now() - start
    client = DaemonClient(FakeTransport(restarted))
    start = _CLOCK.now()
    served = [_trials(client.result(rid)) for rid in rids]
    t_reserve = _CLOCK.now() - start
    # Hard gates: bit-identical re-serving with zero re-measurement.
    assert served == originals, "re-served results are not bit-identical"
    assert restarted.service.stats.measurements == 0, (
        f"restart re-measured {restarted.service.stats.measurements} configs; "
        f"journaled results must serve with zero re-measurement"
    )
    assert restarted.stats.recovered == SERVE_REQUESTS
    # An idempotent resubmit also re-serves without re-admission.
    assert client.submit(requests[0]) == request_id(requests[0])
    assert restarted.stats.accepted == 0
    restarted.kill()
    reserve_speedup = t_tune / t_reserve

    table = ResultTable(
        f"Tuning daemon ({spec.name}, {JOURNAL_ENTRIES:,}-entry journal, "
        f"{SERVE_REQUESTS} x {TUNE_BUDGET}-trial requests)",
        columns=["phase", "seconds", "per_second"],
    )
    table.add_row(
        phase=f"journal write ({JOURNAL_ENTRIES:,} x 3 events)",
        seconds=t_write,
        per_second=JOURNAL_ENTRIES / t_write,
    )
    table.add_row(
        phase="recovery (full log tail)",
        seconds=t_recover_log,
        per_second=recovery_per_second,
    )
    table.add_row(
        phase="recovery (post-drain snapshot)",
        seconds=t_recover_snap,
        per_second=snap_recovery_per_second,
    )
    table.add_row(phase="tune via daemon", seconds=t_tune, per_second=measured / t_tune)
    table.add_row(
        phase="restart + re-serve",
        seconds=t_restart + t_reserve,
        per_second=SERVE_REQUESTS / (t_restart + t_reserve),
    )
    return table, {
        "journal_entries": JOURNAL_ENTRIES,
        "journal_write_seconds": t_write,
        "recovery_seconds": t_recover_log,
        "recovery_per_second": recovery_per_second,
        "snapshot_recovery_seconds": t_recover_snap,
        "snapshot_recovery_per_second": snap_recovery_per_second,
        "serve_requests": SERVE_REQUESTS,
        "tune_seconds": t_tune,
        "measurements_before_kill": measured,
        "restart_seconds": t_restart,
        "reserve_seconds": t_reserve,
        "remeasurements_after_restart": 0,
        "reserve_speedup": reserve_speedup,
    }


@pytest.mark.benchmark(group="daemon")
def test_daemon_recovery_and_reserve(benchmark, gpu_v100, tmp_path):
    table, stats = benchmark.pedantic(
        run_daemon_benchmark, args=(gpu_v100, tmp_path), rounds=1, iterations=1
    )
    emit(render_table(table, precision=2))
    emit(
        f"recovery: {stats['recovery_per_second']:,.0f} entries/s "
        f"(snapshot path {stats['snapshot_recovery_per_second']:,.0f}/s), "
        f"re-serve speedup: {stats['reserve_speedup']:.0f}x, "
        f"re-measurements after restart: {stats['remeasurements_after_restart']}"
    )
    write_bench_json("daemon", gpu=gpu_v100.name, **stats)
    # Wall-clock floors (soft under BENCH_SPEEDUP_SOFT=1); the bit-identity
    # and zero-re-measurement asserts above always gate.
    _soft_floor("recovery_per_second", stats["recovery_per_second"], 2_000)
    _soft_floor(
        "snapshot_recovery_per_second", stats["snapshot_recovery_per_second"], 2_000
    )
    _soft_floor("reserve_speedup", stats["reserve_speedup"], 5.0)
