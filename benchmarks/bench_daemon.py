"""Tuning daemon — crash recovery and re-serving at journal scale.

The always-on daemon's restart story has two costs that must stay flat as
the journal grows:

* ``recovery`` — a restarted daemon folds its request journal (snapshot +
  log-tail replay) before serving.  We synthesize a 10k-entry journal of
  completed requests (realistic result payloads) and require the fold to
  sustain a floor of entries/second, on both the replay-everything path
  (SIGKILL: no snapshot) and the post-drain path (snapshot, header-only
  tail).
* ``re-serve`` — a recovered daemon answers journaled requests from the
  journal, **never** by re-tuning.  We tune a workload through a live
  daemon, SIGKILL it, restart, and re-request everything: the results must
  be bit-identical and the restarted daemon's measurement count must be
  exactly zero (hard gate, never softened), with re-serving a large
  multiple faster than the original tuning.

Correctness gates (zero re-measurement, bit-identity, exact entry counts)
always fail hard; wall-clock floors soften to warnings under
``BENCH_SPEEDUP_SOFT=1``.
"""

from __future__ import annotations

import os
import signal
import warnings

import pytest

from conftest import emit, write_bench_json
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.obs import MonotonicClock
from repro.service import (
    DaemonClient,
    FakeTransport,
    RequestJournal,
    TuningDaemon,
    TuningRequest,
    TuningWorkerPool,
    request_id,
    request_to_wire,
    result_to_wire,
)

LAYER = ConvParams.square(8, 16, 32, kernel=3, stride=1, padding=1)
JOURNAL_ENTRIES = 10_000
SERVE_REQUESTS = 8
TUNE_BUDGET = 24

#: benchmarks are a real timing edge (REPRO701): one monotonic clock,
#: read only here.
_CLOCK = MonotonicClock()


def _request(spec, seed, budget=TUNE_BUDGET):
    return TuningRequest(
        LAYER, spec, max_measurements=budget, seed=seed, pruned=False, tuner="random"
    )


def _soft_floor(name, value, floor):
    if value >= floor:
        return
    message = f"{name} is {value:.3g}, below the {floor} floor"
    if os.environ.get("BENCH_SPEEDUP_SOFT") == "1":
        warnings.warn(message, stacklevel=2)
    else:
        pytest.fail(message)


def _trials(result):
    return [(t.index, t.config.as_dict(), t.time_seconds, t.gflops) for t in result.trials]


def _synthesize_journal(path, spec, result_wire):
    """10k completed requests, journaled through the real event API."""
    journal = RequestJournal(path, snapshot_min_entries=10**9)  # no auto-snap
    request_wire = request_to_wire(_request(spec, seed=0))
    start = _CLOCK.now()
    for i in range(JOURNAL_ENTRIES):
        rid = f"{i:032d}"
        journal.accept(rid, request_wire)
        journal.mark_running(rid)
        journal.complete(rid, result_wire)
    t_write = _CLOCK.now() - start
    return journal, t_write


def run_daemon_benchmark(spec, tmp_path):
    # One real tuned result as the journaled payload (realistic line size).
    reference = _request(spec, seed=0).tune_direct()
    result_wire = result_to_wire(reference)

    # -- recovery: fold a 10k-entry journal ------------------------------ #
    log_path = os.path.join(tmp_path, "requests.log")
    journal, t_write = _synthesize_journal(log_path, spec, result_wire)
    journal.close()  # SIGKILL-equivalent: full log tail, no snapshot
    start = _CLOCK.now()
    recovered = RequestJournal(log_path)
    t_recover_log = _CLOCK.now() - start
    assert len(recovered) == JOURNAL_ENTRIES
    assert all(e.status == "done" for e in recovered.states().values())
    recovery_per_second = JOURNAL_ENTRIES / t_recover_log

    # Post-drain path: snapshot compaction, then a header-only tail.
    recovered.snapshot()
    recovered.close()
    start = _CLOCK.now()
    compacted = RequestJournal(log_path)
    t_recover_snap = _CLOCK.now() - start
    assert len(compacted) == JOURNAL_ENTRIES
    compacted.close()
    snap_recovery_per_second = JOURNAL_ENTRIES / t_recover_snap

    # -- re-serve: tune, SIGKILL, restart, re-request everything --------- #
    daemon_path = os.path.join(tmp_path, "daemon.log")
    daemon = TuningDaemon(daemon_path)
    client = DaemonClient(FakeTransport(daemon))
    requests = [_request(spec, seed=seed) for seed in range(SERVE_REQUESTS)]
    start = _CLOCK.now()
    rids = [client.submit(request) for request in requests]
    originals = [_trials(client.result(rid)) for rid in rids]
    t_tune = _CLOCK.now() - start
    measured = daemon.service.stats.measurements
    assert measured == SERVE_REQUESTS * TUNE_BUDGET
    daemon.kill()

    start = _CLOCK.now()
    restarted = TuningDaemon(daemon_path)
    t_restart = _CLOCK.now() - start
    client = DaemonClient(FakeTransport(restarted))
    start = _CLOCK.now()
    served = [_trials(client.result(rid)) for rid in rids]
    t_reserve = _CLOCK.now() - start
    # Hard gates: bit-identical re-serving with zero re-measurement.
    assert served == originals, "re-served results are not bit-identical"
    assert restarted.service.stats.measurements == 0, (
        f"restart re-measured {restarted.service.stats.measurements} configs; "
        f"journaled results must serve with zero re-measurement"
    )
    assert restarted.stats.recovered == SERVE_REQUESTS
    # An idempotent resubmit also re-serves without re-admission.
    assert client.submit(requests[0]) == request_id(requests[0])
    assert restarted.stats.accepted == 0
    restarted.kill()
    reserve_speedup = t_tune / t_reserve

    table = ResultTable(
        f"Tuning daemon ({spec.name}, {JOURNAL_ENTRIES:,}-entry journal, "
        f"{SERVE_REQUESTS} x {TUNE_BUDGET}-trial requests)",
        columns=["phase", "seconds", "per_second"],
    )
    table.add_row(
        phase=f"journal write ({JOURNAL_ENTRIES:,} x 3 events)",
        seconds=t_write,
        per_second=JOURNAL_ENTRIES / t_write,
    )
    table.add_row(
        phase="recovery (full log tail)",
        seconds=t_recover_log,
        per_second=recovery_per_second,
    )
    table.add_row(
        phase="recovery (post-drain snapshot)",
        seconds=t_recover_snap,
        per_second=snap_recovery_per_second,
    )
    table.add_row(phase="tune via daemon", seconds=t_tune, per_second=measured / t_tune)
    table.add_row(
        phase="restart + re-serve",
        seconds=t_restart + t_reserve,
        per_second=SERVE_REQUESTS / (t_restart + t_reserve),
    )
    return table, {
        "journal_entries": JOURNAL_ENTRIES,
        "journal_write_seconds": t_write,
        "recovery_seconds": t_recover_log,
        "recovery_per_second": recovery_per_second,
        "snapshot_recovery_seconds": t_recover_snap,
        "snapshot_recovery_per_second": snap_recovery_per_second,
        "serve_requests": SERVE_REQUESTS,
        "tune_seconds": t_tune,
        "measurements_before_kill": measured,
        "restart_seconds": t_restart,
        "reserve_seconds": t_reserve,
        "remeasurements_after_restart": 0,
        "reserve_speedup": reserve_speedup,
    }


def run_pool_daemon_benchmark(spec, tmp_path):
    """Pool-backed daemon vs service-backed: same journal, same answers.

    Three hard gates (never softened):

    * the pool-backed daemon is bit-identical to the service-backed one on
      the same workload — same rids, same trial trajectories, same
      measurement counts;
    * a SIGKILLed pool-backed daemon restarts and re-serves every result
      from the journal with **zero** pool measurements;
    * a SIGKILLed *worker* under a live daemon degrades per the pool's
      fault model — the parent salvages the shard and the workload still
      completes bit-identically (skipped when the platform cannot fork).
    """
    requests = [_request(spec, seed=seed) for seed in range(SERVE_REQUESTS)]

    # Reference: the service-backed daemon on the same workload.
    svc_daemon = TuningDaemon(os.path.join(tmp_path, "svc.log"))
    svc_client = DaemonClient(FakeTransport(svc_daemon))
    start = _CLOCK.now()
    rids = [svc_client.submit(request) for request in requests]
    svc_results = [_trials(svc_client.result(rid)) for rid in rids]
    t_service = _CLOCK.now() - start
    svc_measured = svc_daemon.service.stats.measurements
    svc_daemon.kill()

    # -- gate 1: pool backend is bit-identical, measurement for measurement #
    pool_path = os.path.join(tmp_path, "pool.log")
    pool = TuningWorkerPool(num_workers=2)
    daemon = TuningDaemon(pool_path, backend=pool)
    client = DaemonClient(FakeTransport(daemon))
    start = _CLOCK.now()
    pool_rids = [client.submit(request) for request in requests]
    pool_results = [_trials(client.result(rid)) for rid in pool_rids]
    t_pool = _CLOCK.now() - start
    process_fleet = bool(pool._serve_workers)  # serial fallback => empty
    assert pool_rids == rids, "request ids must not depend on the backend"
    assert pool_results == svc_results, (
        "pool-backed daemon diverged from the service-backed daemon"
    )
    daemon.drain()  # stop the fleet: worker stats fold in at their byes
    pool_measured = pool.stats.measurements
    assert pool_measured == svc_measured == SERVE_REQUESTS * TUNE_BUDGET, (
        f"pool backend measured {pool_measured}, service {svc_measured}; "
        f"expected exactly {SERVE_REQUESTS * TUNE_BUDGET} each"
    )
    daemon.kill()

    # -- gate 2: restart re-serves with zero pool measurements ----------- #
    restarted_pool = TuningWorkerPool(num_workers=2)
    start = _CLOCK.now()
    restarted = TuningDaemon(pool_path, backend=restarted_pool)
    client = DaemonClient(FakeTransport(restarted))
    served = [_trials(client.result(rid)) for rid in pool_rids]
    t_reserve = _CLOCK.now() - start
    assert served == svc_results, "re-served results are not bit-identical"
    assert restarted_pool.stats.measurements == 0, (
        f"restart re-measured {restarted_pool.stats.measurements} configs "
        f"through the pool; journaled results must serve for free"
    )
    restarted.kill()
    pool_reserve_speedup = t_pool / t_reserve

    # -- gate 3: SIGKILL a worker under a live daemon -------------------- #
    worker_failures = 0
    if process_fleet:
        kill_pool = TuningWorkerPool(num_workers=2)
        kill_daemon = TuningDaemon(os.path.join(tmp_path, "kill.log"), backend=kill_pool)
        kill_client = DaemonClient(FakeTransport(kill_daemon))
        kill_rids = [
            kill_client.submit(_request(spec, seed=100 + seed))
            for seed in range(SERVE_REQUESTS)
        ]
        victim = next(iter(kill_pool._serve_workers.values()))
        os.kill(victim.pid, signal.SIGKILL)
        degraded = [_trials(kill_client.result(rid)) for rid in kill_rids]
        direct = [
            _trials(_request(spec, seed=100 + seed).tune_direct())
            for seed in range(SERVE_REQUESTS)
        ]
        assert degraded == direct, (
            "workload diverged after a worker SIGKILL under a live daemon"
        )
        worker_failures = kill_pool.stats.worker_failures
        assert worker_failures >= 1, "the kill was absorbed without a failover"
        kill_daemon.kill()

    table = ResultTable(
        f"Pool-backed daemon ({spec.name}, {SERVE_REQUESTS} x "
        f"{TUNE_BUDGET}-trial requests, "
        f"{'process fleet' if process_fleet else 'serial fallback'})",
        columns=["phase", "seconds", "per_second"],
    )
    table.add_row(
        phase="tune via service backend",
        seconds=t_service,
        per_second=svc_measured / t_service,
    )
    table.add_row(
        phase="tune via pool backend",
        seconds=t_pool,
        per_second=pool_measured / t_pool,
    )
    table.add_row(
        phase="restart + re-serve (pool)",
        seconds=t_reserve,
        per_second=SERVE_REQUESTS / t_reserve,
    )
    return table, {
        "serve_requests": SERVE_REQUESTS,
        "process_fleet": process_fleet,
        "service_tune_seconds": t_service,
        "pool_tune_seconds": t_pool,
        "pool_measurements": pool_measured,
        "remeasurements_after_restart": 0,
        "pool_reserve_seconds": t_reserve,
        "pool_reserve_speedup": pool_reserve_speedup,
        "worker_failures_survived": worker_failures,
    }


@pytest.mark.benchmark(group="daemon")
def test_daemon_recovery_and_reserve(benchmark, gpu_v100, tmp_path):
    table, stats = benchmark.pedantic(
        run_daemon_benchmark, args=(gpu_v100, tmp_path), rounds=1, iterations=1
    )
    emit(render_table(table, precision=2))
    emit(
        f"recovery: {stats['recovery_per_second']:,.0f} entries/s "
        f"(snapshot path {stats['snapshot_recovery_per_second']:,.0f}/s), "
        f"re-serve speedup: {stats['reserve_speedup']:.0f}x, "
        f"re-measurements after restart: {stats['remeasurements_after_restart']}"
    )
    write_bench_json("daemon", gpu=gpu_v100.name, **stats)
    # Wall-clock floors (soft under BENCH_SPEEDUP_SOFT=1); the bit-identity
    # and zero-re-measurement asserts above always gate.
    _soft_floor("recovery_per_second", stats["recovery_per_second"], 2_000)
    _soft_floor(
        "snapshot_recovery_per_second", stats["snapshot_recovery_per_second"], 2_000
    )
    _soft_floor("reserve_speedup", stats["reserve_speedup"], 5.0)


@pytest.mark.benchmark(group="daemon")
def test_pool_backed_daemon(benchmark, gpu_v100, tmp_path):
    table, stats = benchmark.pedantic(
        run_pool_daemon_benchmark, args=(gpu_v100, tmp_path), rounds=1, iterations=1
    )
    emit(render_table(table, precision=2))
    emit(
        f"pool backend: {'process fleet' if stats['process_fleet'] else 'serial'}, "
        f"re-serve speedup {stats['pool_reserve_speedup']:.0f}x, "
        f"worker failures survived: {stats['worker_failures_survived']}, "
        f"re-measurements after restart: {stats['remeasurements_after_restart']}"
    )
    write_bench_json("daemon_pool", gpu=gpu_v100.name, **stats)
    # The bit-identity / zero-re-measurement / failover asserts above always
    # gate; only the wall-clock floor softens under BENCH_SPEEDUP_SOFT=1.
    # Floor calibrated from a 3-run spread of 4.3-7.1x (the pool restart
    # pays fleet startup that the service backend does not).
    _soft_floor(
        "pool_reserve_speedup", stats["pool_reserve_speedup"], 3.0
    )
