#!/usr/bin/env python
"""Diff the latest ``BENCH_*.json`` telemetry against a checked-in baseline.

Every benchmark writes machine-readable telemetry (``write_bench_json`` in
``benchmarks/conftest.py``) and CI uploads the files as artifacts, so the
repository accumulates a perf trajectory.  This script turns that trajectory
into a regression alarm: it loads the baseline (``bench_baseline.json`` next
to this file — the floor each tracked metric is expected to hold), finds the
matching ``BENCH_<name>.json`` files, and reports every tracked metric that
fell more than ``--tolerance`` below its baseline.

Exit status: ``1`` when a regression is found.  The CI ``benchmarks`` job
runs this as a hard gate: a 3-run noise characterization (PR 6) measured
worst-case run-to-run spread of ~20%, and every baseline floor holds with
>=21% headroom below the observed minimum at the default 20% tolerance —
so a failure is a real regression, not shared-runner noise.  ``--warn-only``
remains available for local experimentation (exit ``0`` on regressions);
missing benchmark files or metrics are reported as warnings only, because
benchmark sets grow over time.

Standard library only — runnable anywhere, no ``PYTHONPATH`` needed::

    python benchmarks/compare_bench.py --bench-dir .
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "bench_baseline.json")


def load_baseline(path: str) -> Dict[str, Dict[str, float]]:
    with open(path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if not isinstance(baseline, dict) or not all(
        isinstance(metrics, dict)
        and all(
            isinstance(floor, (int, float)) and not isinstance(floor, bool)
            for floor in metrics.values()
        )
        for metrics in baseline.values()
    ):
        raise ValueError(
            f"{path}: baseline must map benchmark name -> {{metric: numeric floor}}"
        )
    return baseline


def compare(
    baseline: Dict[str, Dict[str, float]], bench_dir: str, tolerance: float
) -> Tuple[List[str], List[str]]:
    """Return ``(regressions, warnings)`` message lists."""
    regressions: List[str] = []
    warnings: List[str] = []
    for name, metrics in sorted(baseline.items()):
        path = os.path.join(bench_dir, f"BENCH_{name}.json")
        if not os.path.exists(path):
            warnings.append(f"{name}: no {os.path.basename(path)} in {bench_dir}")
            continue
        with open(path, "r", encoding="utf-8") as fh:
            latest = json.load(fh)
        for metric, base_value in sorted(metrics.items()):
            if metric not in latest:
                warnings.append(f"{name}.{metric}: missing from {path}")
                continue
            value = latest[metric]
            floor = base_value * (1.0 - tolerance)
            if not isinstance(value, (int, float)) or value < floor:
                regressions.append(
                    f"{name}.{metric}: {value} is below {floor:.3g} "
                    f"(baseline {base_value:.3g} - {tolerance:.0%} tolerance)"
                )
            else:
                print(
                    f"ok  {name}.{metric}: {value:.3g} "
                    f">= {floor:.3g} (baseline {base_value:.3g})"
                )
    return regressions, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline JSON (benchmark name -> {metric: expected floor})",
    )
    parser.add_argument(
        "--bench-dir",
        default=os.environ.get("BENCH_DIR", "."),
        help="directory holding the latest BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional shortfall below the baseline (default 0.2)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI default: warn, don't fail)",
    )
    args = parser.parse_args(argv)

    baseline = load_baseline(args.baseline)
    regressions, warnings = compare(baseline, args.bench_dir, args.tolerance)
    for message in warnings:
        print(f"warn {message}")
    for message in regressions:
        print(f"REGRESSION {message}")
    if regressions:
        print(
            f"{len(regressions)} benchmark metric(s) regressed beyond "
            f"{args.tolerance:.0%} of baseline"
        )
        return 0 if args.warn_only else 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
