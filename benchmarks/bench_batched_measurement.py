"""Batched measurement pipeline — wall-clock speedup over per-config runs.

The tuner's hot loop is measuring batches of configurations (Figure 8's
dataset-updating stage).  This benchmark measures 256 configurations of a
realistic direct-convolution space three ways:

* ``per-config (seed pipeline)`` — the pre-batching flow: a feasibility probe
  that lowers the configuration, a measurement that lowers it again, and the
  scalar executor (this is the path the tentpole replaces);
* ``per-config (scalar)`` — today's scalar path (single lowering, memoised);
* ``measure_batch`` — the vectorised lowering + ``run_batch`` pipeline.

The batched pipeline must be at least 5x faster than the per-config pipeline
while producing bit-identical execution times.
"""

from __future__ import annotations

import os
import random
import warnings

import pytest

from conftest import emit, write_bench_json
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.core.autotune import Measurer, SearchSpace, build_profile
from repro.obs import MonotonicClock
from repro.gpusim import GPUExecutor

PARAMS = ConvParams.square(28, 128, 128, kernel=3, stride=1, padding=1)
N_CONFIGS = 256
ROUNDS = 5


def _configs(spec):
    rng = random.Random(7)
    space = SearchSpace(PARAMS, spec, "direct", pruned=True)
    configs, seen = [], set()
    while len(configs) < N_CONFIGS:
        c = space.random_configuration(rng)
        if c.key() not in seen:
            seen.add(c.key())
            configs.append(c)
    return configs


#: benchmarks are a real timing edge (REPRO701): one monotonic clock,
#: read only here.
_CLOCK = MonotonicClock()


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = _CLOCK.now()
        fn()
        best = min(best, _CLOCK.now() - start)
    return best


def run_batched_measurement(spec):
    configs = _configs(spec)

    def seed_pipeline():
        # The pre-batching per-config flow: every accepted measurement lowered
        # the configuration twice (is_feasible + measure), one at a time.
        executor = GPUExecutor(spec)
        for config in configs:
            try:
                build_profile(config, PARAMS, spec)  # feasibility probe
            except ValueError:
                continue
            executor.run(build_profile(config, PARAMS, spec))

    def scalar_pipeline():
        measurer = Measurer(PARAMS, spec)
        for config in configs:
            if measurer.is_feasible(config):
                measurer.measure(config)

    def batched_pipeline():
        Measurer(PARAMS, spec).measure_batch(configs)

    t_seed = _best_of(seed_pipeline)
    t_scalar = _best_of(scalar_pipeline)
    t_batch = _best_of(batched_pipeline)

    # Exactness: the batched pipeline reproduces the scalar times bit-for-bit.
    scalar = Measurer(PARAMS, spec)
    scalar_times = [
        scalar.measure(c).time_seconds for c in configs if scalar.is_feasible(c)
    ]
    batched = [
        r.time_seconds
        for r in Measurer(PARAMS, spec).measure_batch(configs)
        if r is not None
    ]
    assert batched == scalar_times, "batched times diverge from the scalar path"

    table = ResultTable(
        f"Batched measurement pipeline ({spec.name}, {N_CONFIGS} configurations)",
        columns=["pipeline", "ms", "us_per_config", "speedup"],
    )
    for name, t in (
        ("per-config (seed pipeline)", t_seed),
        ("per-config (scalar)", t_scalar),
        ("measure_batch", t_batch),
    ):
        table.add_row(
            pipeline=name,
            ms=t * 1e3,
            us_per_config=t * 1e6 / N_CONFIGS,
            speedup=t_seed / t,
        )
    times = {"seed": t_seed, "scalar": t_scalar, "batched": t_batch}
    return table, t_seed / t_batch, t_scalar / t_batch, times


@pytest.mark.benchmark(group="batched-measurement")
def test_batched_measurement_speedup(benchmark, gpu_v100):
    table, speedup_vs_seed, speedup_vs_scalar, times = benchmark.pedantic(
        run_batched_measurement, args=(gpu_v100,), rounds=1, iterations=1
    )
    emit(render_table(table, precision=2))
    emit(
        f"measure_batch speedup: {speedup_vs_seed:.1f}x over the per-config seed "
        f"pipeline, {speedup_vs_scalar:.1f}x over the single-lowering scalar path"
    )
    write_bench_json(
        "batched_measurement",
        gpu=gpu_v100.name,
        num_configs=N_CONFIGS,
        seed_pipeline_seconds=times["seed"],
        scalar_pipeline_seconds=times["scalar"],
        batched_pipeline_seconds=times["batched"],
        speedup_vs_seed=speedup_vs_seed,
        speedup_vs_scalar=speedup_vs_scalar,
    )
    # Wall-clock ratios gate by default (the bit-identity assert above always
    # gates).  On shared CI runners, where co-tenancy can deflate the batched
    # leg, BENCH_SPEEDUP_SOFT=1 downgrades a shortfall to a warning so an
    # unrelated PR does not go red on scheduler noise.
    soft = os.environ.get("BENCH_SPEEDUP_SOFT") == "1"
    for ratio, floor, label in (
        (speedup_vs_seed, 5.0, "per-config seed pipeline"),
        (speedup_vs_scalar, 2.5, "single-lowering scalar path"),
    ):
        if ratio >= floor:
            continue
        message = f"speedup vs {label} is {ratio:.1f}x, below the {floor}x floor"
        if soft:
            warnings.warn(message, stacklevel=2)
        else:
            pytest.fail(message)
