"""Theory validation — lower bounds vs pebble-game measurements and dataflows.

Not a numbered table in the paper, but the consistency experiment behind
Theorems 4.12 / 4.20 and Section 5's near-optimality claim (experiment E7 in
DESIGN.md):

* on small convolution DAGs, the I/O measured for legal red-blue pebble game
  executions is never below the composite lower bound;
* on realistic layer shapes, the dataflow's closed-form I/O volume stays
  within a bounded factor of the lower bound, and the factor shrinks as the
  optimality condition is satisfied more exactly.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.core.bounds import (
    direct_conv_io_lower_bound,
    winograd_io_lower_bound,
)
from repro.core.dataflow import DirectDataflow, WinogradDataflow
from repro.pebble import direct_conv_dag, simulate_topological

SMALL = [
    ConvParams.square(4, 2, 2, kernel=3, stride=1),
    ConvParams.square(5, 2, 3, kernel=2, stride=1),
    ConvParams.square(6, 3, 2, kernel=3, stride=2),
]

LAYERS = [
    ConvParams.square(56, 256, 128, kernel=3, stride=1, padding=1),
    ConvParams.square(112, 64, 64, kernel=3, stride=1, padding=1),
    ConvParams.square(14, 256, 1024, kernel=3, stride=1, padding=1),
]


def run_pebble_vs_bound():
    table = ResultTable(
        "Pebble-game I/O vs composite lower bound (small direct-conv DAGs)",
        columns=["problem", "S", "measured_Q", "lower_bound", "measured/bound"],
    )
    for params in SMALL:
        dag = direct_conv_dag(params)
        for capacity in (16, 32):
            measured = simulate_topological(dag, capacity=capacity).io_operations
            bound = direct_conv_io_lower_bound(params, capacity)
            table.add_row(
                problem=params.describe(),
                S=capacity,
                measured_Q=measured,
                lower_bound=bound,
                **{"measured/bound": measured / bound if bound else float("inf")},
            )
    return table


def run_dataflow_vs_bound():
    table = ResultTable(
        "Dataflow I/O volume vs lower bound (realistic layers, S = 12288 floats)",
        columns=["layer", "algorithm", "dataflow_io", "lower_bound", "ratio"],
    )
    s = 12288
    for params in LAYERS:
        df = DirectDataflow(params, s)
        lower = direct_conv_io_lower_bound(params, s)
        table.add_row(
            layer=params.describe(),
            algorithm="direct",
            dataflow_io=df.io_volume().total,
            lower_bound=lower,
            ratio=df.io_volume().total / lower,
        )
        wf = WinogradDataflow(params, s, e=2)
        wlower = winograd_io_lower_bound(params, 2, s)
        table.add_row(
            layer=params.describe(),
            algorithm="winograd",
            dataflow_io=wf.io_volume().total,
            lower_bound=wlower,
            ratio=wf.io_volume().total / wlower,
        )
    return table


@pytest.mark.benchmark(group="theory")
def test_theory_pebble_game_vs_bound(benchmark):
    table = benchmark.pedantic(run_pebble_vs_bound, rounds=1, iterations=1)
    emit(render_table(table, precision=2))
    assert all(row["measured/bound"] >= 1.0 for row in table.rows)


@pytest.mark.benchmark(group="theory")
def test_theory_dataflow_vs_bound(benchmark):
    table = benchmark.pedantic(run_dataflow_vs_bound, rounds=1, iterations=1)
    emit(render_table(table, precision=2))
    ratios = table.column("ratio")
    assert all(1.0 <= r <= 64.0 for r in ratios)
