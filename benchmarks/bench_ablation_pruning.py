"""Ablation A1 — does the optimality-condition pruning of the search domain help?

The ATE's defining design choice (Section 6.2) is restricting the search to
the Table-1 domain derived from ``x·y = R·z``.  This ablation runs the same
cost-model-guided tuner with and without the pruning on one AlexNet layer and
compares convergence speed and final quality.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import ResultTable, render_table
from repro.core.autotune import AutoTuningEngine
from repro.nets import alexnet

BUDGET = 80


def run_ablation(spec):
    params = alexnet().layer("conv3").params()
    table = ResultTable(
        f"Ablation — optimality-condition pruning (AlexNet conv3, {spec.name})",
        columns=["variant", "space_size", "best_gflops", "meas_to_95pct", "meas_to_99pct"],
    )
    results = {}
    for variant, pruned in (("ATE (pruned domain)", True), ("ATE w/o pruning", False)):
        engine = AutoTuningEngine(
            params, spec, "direct", max_measurements=BUDGET, seed=17, pruned=pruned
        )
        res = engine.tune()
        results[variant] = res
        table.add_row(
            variant=variant,
            space_size=res.space_size,
            best_gflops=res.best_gflops,
            meas_to_95pct=res.measurements_to_reach(0.95),
            meas_to_99pct=res.measurements_to_reach(0.99),
        )
    return table, results


@pytest.mark.benchmark(group="ablation")
def test_ablation_optimality_pruning(benchmark, gpu_v100):
    table, results = benchmark.pedantic(run_ablation, args=(gpu_v100,), rounds=1, iterations=1)
    emit(render_table(table, precision=2))
    pruned = results["ATE (pruned domain)"]
    unpruned = results["ATE w/o pruning"]
    # Pruning shrinks the space and must not hurt final quality.
    assert pruned.space_size < unpruned.space_size
    assert pruned.best_gflops >= 0.9 * unpruned.best_gflops
