"""Figure 11 — convergence of the ATE vs TVM-style automation methods.

AlexNet conv1 on the V100 model; the y-axis is the best-so-far floating-point
efficiency (GFLOP/s) of the tuned direct convolution, the x-axis the number
of measured configurations.  The cuDNN baseline is shown as a horizontal
reference.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import FigureData, Series, render_figure
from repro.core.autotune import (
    AutoTuningEngine,
    GeneticTuner,
    RandomSearchTuner,
    SimulatedAnnealingTuner,
    TuningDatabase,
)
from repro.gpusim import CudnnLibrary
from repro.nets import alexnet

BUDGET = 96


def run_figure11(spec):
    layer = alexnet().layer("conv1").params()
    figure = FigureData(
        "Figure 11 — best-so-far GFLOP/s vs number of measurements (AlexNet conv1, "
        f"{spec.name})",
        xlabel="measurements",
        ylabel="GFLOP/s",
    )
    database = TuningDatabase()
    tuners = {
        "ATE (ours)": AutoTuningEngine(
            layer, spec, "direct", max_measurements=BUDGET, seed=11, database=database
        ),
        "SimulatedAnnealing (TVM)": SimulatedAnnealingTuner(layer, spec, "direct", max_measurements=BUDGET, seed=11),
        "Random (TVM)": RandomSearchTuner(layer, spec, "direct", max_measurements=BUDGET, seed=11),
        "Genetic (TVM)": GeneticTuner(layer, spec, "direct", max_measurements=BUDGET, seed=11),
    }
    results = {}
    for name, tuner in tuners.items():
        result = tuner.tune()
        results[name] = result
        series = Series(name)
        for i, gflops in enumerate(result.best_gflops_curve(), start=1):
            series.append(i, gflops)
        figure.add_series(series)

    # The tuned layer is now in the database: a repeat request (same layer
    # elsewhere in the network, or a re-run) costs zero measurements.
    cached = AutoTuningEngine(
        layer, spec, "direct", max_measurements=BUDGET, seed=11, database=database
    ).tune()
    assert cached.from_cache and cached.best_time == results["ATE (ours)"].best_time

    cudnn_gflops = CudnnLibrary(spec).run_direct(layer).gflops
    baseline = Series("cuDNN baseline")
    baseline.append(1, cudnn_gflops)
    baseline.append(BUDGET, cudnn_gflops)
    figure.add_series(baseline)
    return figure, results, cudnn_gflops


@pytest.mark.benchmark(group="fig11")
def test_fig11_tuner_convergence(benchmark, gpu_v100):
    figure, results, cudnn_gflops = benchmark.pedantic(
        run_figure11, args=(gpu_v100,), rounds=1, iterations=1
    )
    emit(render_figure(figure))
    ate = results["ATE (ours)"]
    others = [r for name, r in results.items() if name != "ATE (ours)"]
    emit(
        "Final GFLOP/s — "
        + ", ".join(f"{name}: {r.best_gflops:.0f}" for name, r in results.items())
        + f", cuDNN: {cudnn_gflops:.0f}"
    )
    # The ATE ends above the cuDNN baseline and within a small margin of the
    # best TVM-style method (per-seed variance at this 96-measurement budget
    # is recorded in EXPERIMENTS.md).
    assert ate.best_gflops >= max(o.best_gflops for o in others) * 0.85
    assert ate.best_gflops > cudnn_gflops
    # And it converges sooner (fewer measurements to reach 95% of its final value
    # than the best baseline needs to reach 95% of its own).
    ate_speed = ate.measurements_to_reach(0.95)
    baseline_speed = min(o.measurements_to_reach(0.95) for o in others)
    emit(f"Measurements to reach 95% of final: ATE {ate_speed}, best baseline {baseline_speed}")
