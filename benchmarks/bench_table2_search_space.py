"""Table 2 — search-space size, iterations and solution quality: ATE vs TVM.

For AlexNet conv1–conv4 (direct convolution) and conv3/conv4 (Winograd) on
the V100 model, report

* the size of the unpruned (TVM) and pruned (ATE) configuration spaces,
* the number of measurements each tuner needed to converge, and
* the performance (GFLOP/s) of each tuner's best configuration.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import ResultTable, render_table
from repro.core.autotune import AutoTuningEngine, TVMStyleTuner
from repro.nets import alexnet

BUDGET = 72

CASES = [
    ("conv1", "direct"),
    ("conv2", "direct"),
    ("conv3", "direct"),
    ("conv4", "direct"),
    ("conv3_wino", "winograd"),
    ("conv4_wino", "winograd"),
]


def run_table2(spec):
    model = alexnet()
    table = ResultTable(
        f"Table 2 — TVM-style tuner vs auto-tuning engine (ATE) on {spec.name}",
        columns=[
            "layer",
            "algorithm",
            "space_tvm",
            "space_ate",
            "ate/tvm space",
            "iters_tvm",
            "iters_ate",
            "tvm/ate iters",
            "gflops_tvm",
            "gflops_ate",
            "ate/tvm gflops",
        ],
    )
    for case, algorithm in CASES:
        layer_name = case.split("_")[0]
        params = model.layer(layer_name).params()
        ate = AutoTuningEngine(params, spec, algorithm, max_measurements=BUDGET, seed=7)
        tvm = TVMStyleTuner(params, spec, algorithm, max_measurements=BUDGET, seed=7)
        res_ate = ate.tune()
        res_tvm = tvm.tune()
        iters_ate = res_ate.measurements_to_reach(0.99)
        iters_tvm = res_tvm.measurements_to_reach(0.99)
        table.add_row(
            layer=case,
            algorithm=algorithm,
            space_tvm=res_tvm.space_size,
            space_ate=res_ate.space_size,
            **{
                "ate/tvm space": res_ate.space_size / res_tvm.space_size,
                "iters_tvm": iters_tvm,
                "iters_ate": iters_ate,
                "tvm/ate iters": iters_tvm / max(1, iters_ate),
                "gflops_tvm": res_tvm.best_gflops,
                "gflops_ate": res_ate.best_gflops,
                "ate/tvm gflops": res_ate.best_gflops / max(1e-9, res_tvm.best_gflops),
            },
        )
    return table


@pytest.mark.benchmark(group="table2")
def test_table2_search_space_and_quality(benchmark, gpu_v100):
    table = benchmark.pedantic(run_table2, args=(gpu_v100,), rounds=1, iterations=1)
    emit(render_table(table, precision=2))
    space_ratios = table.column("ate/tvm space")
    gflop_ratios = table.column("ate/tvm gflops")
    emit(
        f"Mean ATE/TVM space ratio: {sum(space_ratios)/len(space_ratios):.2f} "
        "(paper: 0.21–0.53); "
        f"mean ATE/TVM GFLOP/s ratio: {sum(gflop_ratios)/len(gflop_ratios):.2f} "
        "(paper: 1.00–1.84)"
    )
    # The pruned domain is always strictly smaller, and on average the ATE's
    # solution is at least as good as the TVM-style solution (individual layers
    # can fluctuate with the small measurement budget used here).
    assert all(r < 1.0 for r in space_ratios)
    assert sum(gflop_ratios) / len(gflop_ratios) > 0.95
    assert min(gflop_ratios) > 0.45
