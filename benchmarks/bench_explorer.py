"""Vectorised explorer — wall-clock speedup of the search-side hot path.

PRs 1–3 vectorised the measurement side; after them the tuner's wall-clock is
dominated by ``ParallelRandomWalkExplorer.propose`` (Section 6.2's searching
process).  This benchmark drives both explorer implementations through one
realistic 256-walker proposal against a trained cost model:

* ``scalar`` — the reference path: one ``Configuration`` at a time through
  ``space.neighbor`` / per-row features / a scalar Metropolis loop;
* ``vectorized`` — the lock-step SoA path: batched ``neighbor_batch`` draws,
  column-wise ``feature_matrix`` scoring and vectorised Metropolis accepts.

Two correctness properties always gate (regardless of wall clock): the
column-wise feature matrix must be bit-identical to the per-row path, and the
vectorised explorer's best-found runtime at equal measurement budget must be
no worse than the scalar explorer's (≤5% in the mean) across a seed grid.
The ≥5x propose() speedup floor is soft under ``BENCH_SPEEDUP_SOFT=1``.
"""

from __future__ import annotations

import os
import random
import statistics
import warnings

import numpy as np
import pytest

from conftest import emit, write_bench_json
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.obs import MonotonicClock
from repro.core.autotune import (
    AutoTuningEngine,
    ConfigArray,
    CostModel,
    ExplorerConfig,
    Measurer,
    ParallelRandomWalkExplorer,
    ScalarRandomWalkExplorer,
    SearchSpace,
    feature_matrix,
    feature_vector,
)

PARAMS = ConvParams.square(28, 128, 128, kernel=3, stride=1, padding=1)
NUM_WALKERS = 256
WALK_LENGTH = 24
BATCH_SIZE = 64
TRAIN_SAMPLES = 128
ROUNDS = 3

QUALITY_BUDGET = 96
QUALITY_SEEDS = range(5)
QUALITY_TOLERANCE = 1.05


def _trained_model(spec):
    space = SearchSpace(PARAMS, spec, "direct", pruned=True)
    measurer = Measurer(PARAMS, spec)
    train = space.sample(random.Random(7), TRAIN_SAMPLES)
    times = [
        measurer.time_seconds(c) if measurer.is_feasible(c) else float("inf")
        for c in train
    ]
    model = CostModel(min_samples=8, seed=0)
    model.fit(feature_matrix(train, PARAMS, spec), times)
    return space, model, train


#: benchmarks are a real timing edge (REPRO701): one monotonic clock,
#: read only here.
_CLOCK = MonotonicClock()


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = _CLOCK.now()
        fn()
        best = min(best, _CLOCK.now() - start)
    return best


def run_explorer_benchmark(spec):
    space, model, train = _trained_model(spec)
    cfg = ExplorerConfig(num_walkers=NUM_WALKERS, walk_length=WALK_LENGTH)

    # Hard gate: the column-wise features are bit-identical to per-row ones.
    fast = feature_matrix(ConfigArray.from_configs(train), PARAMS, spec)
    reference = np.stack([feature_vector(c, PARAMS, spec) for c in train])
    assert (fast == reference).all(), "feature_matrix diverges from feature_vector"

    def scalar():
        ScalarRandomWalkExplorer(space, PARAMS, spec, config=cfg, seed=5).propose(
            model, BATCH_SIZE
        )

    def vectorized():
        ParallelRandomWalkExplorer(space, PARAMS, spec, config=cfg, seed=5).propose(
            model, BATCH_SIZE
        )

    t_scalar = _best_of(scalar)
    t_vector = _best_of(vectorized)

    # Hard gate: search quality at equal measurement budget, seed grid.
    quality = {}
    for name, cls in (
        ("scalar", ScalarRandomWalkExplorer),
        ("vectorized", ParallelRandomWalkExplorer),
    ):
        quality[name] = [
            AutoTuningEngine(
                PARAMS,
                spec,
                "direct",
                max_measurements=QUALITY_BUDGET,
                seed=seed,
                measurer=Measurer(PARAMS, spec),
                explorer_cls=cls,
            )
            .tune()
            .best_time
            for seed in QUALITY_SEEDS
        ]
    scalar_mean = statistics.mean(quality["scalar"])
    vector_mean = statistics.mean(quality["vectorized"])
    assert vector_mean <= scalar_mean * QUALITY_TOLERANCE, (
        f"vectorised explorer quality regressed: mean best {vector_mean:.3e}s vs "
        f"scalar {scalar_mean:.3e}s over seeds {list(QUALITY_SEEDS)}"
    )

    table = ResultTable(
        f"Explorer propose() ({spec.name}, {NUM_WALKERS} walkers x "
        f"{WALK_LENGTH} steps, trained model)",
        columns=["explorer", "ms", "us_per_walker_step", "speedup"],
    )
    for name, t in (("scalar", t_scalar), ("vectorized", t_vector)):
        table.add_row(
            explorer=name,
            ms=t * 1e3,
            us_per_walker_step=t * 1e6 / (NUM_WALKERS * WALK_LENGTH),
            speedup=t_scalar / t,
        )
    return table, t_scalar, t_vector, scalar_mean, vector_mean


@pytest.mark.benchmark(group="explorer")
def test_explorer_speedup(benchmark, gpu_v100):
    table, t_scalar, t_vector, q_scalar, q_vector = benchmark.pedantic(
        run_explorer_benchmark, args=(gpu_v100,), rounds=1, iterations=1
    )
    speedup = t_scalar / t_vector
    emit(render_table(table, precision=2))
    emit(
        f"vectorized propose() speedup: {speedup:.1f}x "
        f"(quality: {q_vector / q_scalar:.3f}x scalar mean best time at "
        f"{QUALITY_BUDGET}-measurement budget)"
    )
    write_bench_json(
        "explorer",
        gpu=gpu_v100.name,
        num_walkers=NUM_WALKERS,
        walk_length=WALK_LENGTH,
        batch_size=BATCH_SIZE,
        scalar_seconds=t_scalar,
        vectorized_seconds=t_vector,
        speedup=speedup,
        quality_budget=QUALITY_BUDGET,
        quality_scalar_mean_best=q_scalar,
        quality_vectorized_mean_best=q_vector,
        quality_ratio=q_vector / q_scalar,
    )
    # Wall-clock floor gates by default; BENCH_SPEEDUP_SOFT=1 downgrades a
    # shortfall to a warning on noisy shared runners (the bit-identity and
    # search-quality asserts above always gate).
    floor = 5.0
    if speedup < floor:
        message = f"explorer speedup is {speedup:.1f}x, below the {floor}x floor"
        if os.environ.get("BENCH_SPEEDUP_SOFT") == "1":
            warnings.warn(message, stacklevel=2)
        else:
            pytest.fail(message)
