"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md
§4) and prints its rows with the analysis helpers so that
``pytest benchmarks/ --benchmark-only -s`` (or the captured ``bench_output.txt``)
contains the reproduced numbers alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.gpusim import GTX_1080TI, V100


def emit(text: str) -> None:
    """Print a report block, padded so it stays readable inside pytest output."""
    print("\n" + text + "\n")


def write_bench_json(name: str, **payload) -> str:
    """Persist a benchmark's machine-readable telemetry.

    Writes ``BENCH_<name>.json`` into ``$BENCH_DIR`` (default: the current
    working directory); CI uploads every ``BENCH_*.json`` as a build artifact
    so the repo accumulates a perf trajectory instead of throwing the numbers
    away with the job log.  Keep payloads flat and JSON-native (speedups,
    wall-clock seconds, measurement counts).  Returns the path written.
    """
    path = os.path.join(os.environ.get("BENCH_DIR", "."), f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    emit(f"bench telemetry written to {path}")
    return path


def write_obs_json(name: str, snapshot, **extra) -> str:
    """Persist an observability snapshot next to the bench telemetry.

    Writes ``OBS_<name>.json`` into ``$BENCH_DIR`` with the snapshot's wire
    form under ``"metrics"`` plus any flat extras (overhead ratios, run
    parameters).  CI uploads ``OBS_*.json`` alongside ``BENCH_*.json``, so
    the perf trajectory carries the metric values that explain the timings
    (fill ratios, coalesce hits, db short-circuits), not just the timings.
    """
    path = os.path.join(os.environ.get("BENCH_DIR", "."), f"OBS_{name}.json")
    payload = dict(extra)
    payload["metrics"] = snapshot.to_wire()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    emit(f"observability telemetry written to {path}")
    return path


@pytest.fixture(scope="session")
def gpu_1080ti():
    return GTX_1080TI


@pytest.fixture(scope="session")
def gpu_v100():
    return V100


@pytest.fixture(scope="session")
def per_block_elements(gpu_1080ti):
    """Fast-memory budget per thread block (two resident blocks per SM)."""
    return gpu_1080ti.shared_mem_per_sm // gpu_1080ti.dtype_size // 2
