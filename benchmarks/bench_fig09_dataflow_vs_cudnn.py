"""Figure 9 — dataflow + tuned tiles vs cuDNN on the synthetic conv sweep.

Reproduces the 16-panel sweep: ``Hker = Wker = 3``, ``Cin = 256``,
``Hin = Win ∈ {14, 56, 112, 196, 224}``, ``Cout ∈ {128, 256, 512, 1024}``,
direct convolution with stride μ ∈ {1, 2, 4} plus the Winograd algorithm, all
on the 1080Ti model.  Reported quantity: speedup of the I/O-optimal dataflow
over the cuDNN baseline.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.core.dataflow import optimal_tile_direct, optimal_tile_winograd
from repro.gpusim import CudnnLibrary, GPUExecutor, direct_dataflow_profile, winograd_dataflow_profile

SIZES = (14, 56, 112, 196, 224)
COUTS = (128, 256, 512, 1024)
STRIDES = (1, 2, 4)
CIN = 256


def _speedup_direct(spec, lib, executor, per_block, size, cout, stride):
    params = ConvParams.square(size, CIN, cout, kernel=3, stride=stride, padding=1)
    tile = optimal_tile_direct(params, per_block)
    ours = executor.run(direct_dataflow_profile(params, tile, dtype_size=spec.dtype_size))
    base = lib.run_direct(params)
    return base.time_seconds / ours.time_seconds


def _speedup_winograd(spec, lib, executor, per_block, size, cout):
    params = ConvParams.square(size, CIN, cout, kernel=3, stride=1, padding=1)
    tile = optimal_tile_winograd(params, per_block, e=2)
    ours = executor.run(winograd_dataflow_profile(params, tile, e=2, dtype_size=spec.dtype_size))
    base = lib.run_winograd(params)
    return base.time_seconds / ours.time_seconds


def run_figure9(spec, per_block):
    lib = CudnnLibrary(spec)
    executor = GPUExecutor(spec)
    table = ResultTable(
        "Figure 9 — relative speedup of the I/O-optimal dataflow over cuDNN "
        f"({spec.name}, Cin={CIN}, 3x3 kernels)",
        columns=["Cout", "algorithm", "stride"] + [f"Win={s}" for s in SIZES],
    )
    speedups = []
    for cout in COUTS:
        for stride in STRIDES:
            row = {
                "Cout": cout,
                "algorithm": "direct",
                "stride": stride,
            }
            for size in SIZES:
                sp = _speedup_direct(spec, lib, executor, per_block, size, cout, stride)
                row[f"Win={size}"] = sp
                speedups.append(sp)
            table.add_row(**row)
        row = {"Cout": cout, "algorithm": "winograd", "stride": 1}
        for size in SIZES:
            sp = _speedup_winograd(spec, lib, executor, per_block, size, cout)
            row[f"Win={size}"] = sp
            speedups.append(sp)
        table.add_row(**row)
    return table, sum(speedups) / len(speedups)


@pytest.mark.benchmark(group="fig09")
def test_fig09_dataflow_vs_cudnn(benchmark, gpu_1080ti, per_block_elements):
    table, mean_speedup = benchmark.pedantic(
        run_figure9, args=(gpu_1080ti, per_block_elements), rounds=1, iterations=1
    )
    emit(render_table(table, precision=2))
    emit(f"Figure 9 mean speedup over cuDNN: {mean_speedup:.2f}x (paper reports 3.32x)")
    # Shape assertions: the benefit exists on average and grows with the input.
    assert mean_speedup > 1.0
    large = [r["Win=224"] for r in table.rows if r["algorithm"] == "direct" and r["stride"] == 1]
    small = [r["Win=14"] for r in table.rows if r["algorithm"] == "direct" and r["stride"] == 1]
    assert sum(large) / len(large) > sum(small) / len(small)
