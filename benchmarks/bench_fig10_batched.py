"""Figure 10 — batched direct convolution vs cuDNN.

``Cin = 256``, ``Cout = 128``, 3x3 kernels, stride 1, ``Hin = Win ∈
{14, 56, 112}``, batch ∈ {32, 64, 128}; speedup of the dataflow over cuDNN
when both scale the batch dimension.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.core.dataflow import optimal_tile_direct
from repro.gpusim import CudnnLibrary, GPUExecutor, direct_dataflow_profile

SIZES = (14, 56, 112)
BATCHES = (32, 64, 128)


def run_figure10(spec, per_block):
    lib = CudnnLibrary(spec)
    executor = GPUExecutor(spec)
    table = ResultTable(
        f"Figure 10 — batched direct convolution speedup over cuDNN ({spec.name}, "
        "Cin=256, Cout=128, 3x3, stride 1)",
        columns=["Hin=Win", "batch", "ours_ms", "cudnn_ms", "speedup"],
    )
    # The whole sweep is one executor batch: build every profile, then run
    # them through the vectorised pipeline in a single call.
    cases = [
        (size, batch, ConvParams.square(size, 256, 128, kernel=3, stride=1, padding=1, batch=batch))
        for size in SIZES
        for batch in BATCHES
    ]
    profiles = [
        direct_dataflow_profile(params, optimal_tile_direct(params, per_block), dtype_size=spec.dtype_size)
        for _, _, params in cases
    ]
    for (size, batch, params), ours in zip(cases, executor.run_batch(profiles)):
        base = lib.run_direct(params)
        table.add_row(
            **{
                "Hin=Win": size,
                "batch": batch,
                "ours_ms": ours.time_ms,
                "cudnn_ms": base.result.time_ms,
                "speedup": base.time_seconds / ours.time_seconds,
            }
        )
    return table


@pytest.mark.benchmark(group="fig10")
def test_fig10_batched_direct_conv(benchmark, gpu_1080ti, per_block_elements):
    table = benchmark.pedantic(
        run_figure10, args=(gpu_1080ti, per_block_elements), rounds=1, iterations=1
    )
    emit(render_table(table, precision=2))
    speedups = table.column("speedup")
    mean = sum(speedups) / len(speedups)
    emit(f"Figure 10 mean batched speedup: {mean:.2f}x (paper reports 1.51x)")
    # Shape checks: the dataflow wins on every batched configuration, as in the
    # paper; note the simulator shows a flatter size trend than the paper's
    # hardware because batching already saturates input reuse in the model
    # (recorded as a deviation in EXPERIMENTS.md).
    assert mean > 1.0
    assert all(s > 1.0 for s in speedups)
