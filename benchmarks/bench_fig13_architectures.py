"""Figure 13 — sensitivity to the GPU architecture.

Four workloads (``Cin = 512``, ``Cout = 128``, 3x3 kernels): direct conv at
28x28 stride 1, direct conv at 112x112 stride 1 and stride 2, Winograd at
112x112 — on the 1080Ti, Titan X and gfx906 models.  Reported quantity:
floating-point efficiency (GFLOP/s) of (a) the dataflow with the auto-tuning
engine, (b) a TVM-style tuned configuration, (c) the cuDNN/MIOpen baseline.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analysis import ResultTable, render_table
from repro.conv import ConvParams
from repro.core.autotune import AutoTuningEngine, TVMStyleTuner
from repro.gpusim import GFX906, GTX_1080TI, TITAN_X, CudnnLibrary

GPUS = (GTX_1080TI, TITAN_X, GFX906)
BUDGET = 48

WORKLOADS = [
    ("direct 28x28 s1", ConvParams.square(28, 512, 128, kernel=3, stride=1, padding=1), "direct"),
    ("direct 112x112 s1", ConvParams.square(112, 512, 128, kernel=3, stride=1, padding=1), "direct"),
    ("direct 112x112 s2", ConvParams.square(112, 512, 128, kernel=3, stride=2, padding=1), "direct"),
    ("winograd 112x112 s1", ConvParams.square(112, 512, 128, kernel=3, stride=1, padding=1), "winograd"),
]


def run_figure13():
    table = ResultTable(
        "Figure 13 — GFLOP/s across GPU architectures (Cin=512, Cout=128, 3x3)",
        columns=["workload", "gpu", "ours_gflops", "tvm_gflops", "library_gflops",
                 "ours/library", "ours/tvm"],
    )
    for name, params, algorithm in WORKLOADS:
        for spec in GPUS:
            ate = AutoTuningEngine(params, spec, algorithm, max_measurements=BUDGET, seed=13).tune()
            tvm = TVMStyleTuner(params, spec, algorithm, max_measurements=BUDGET, seed=13).tune()
            lib = CudnnLibrary(spec)
            if algorithm == "winograd":
                library = lib.run_winograd(params)
            else:
                library = lib.run_direct(params)
            table.add_row(
                workload=name,
                gpu=spec.name,
                ours_gflops=ate.best_gflops,
                tvm_gflops=tvm.best_gflops,
                library_gflops=library.gflops,
                **{
                    "ours/library": ate.best_gflops / max(1e-9, library.gflops),
                    "ours/tvm": ate.best_gflops / max(1e-9, tvm.best_gflops),
                },
            )
    return table


@pytest.mark.benchmark(group="fig13")
def test_fig13_architecture_sensitivity(benchmark):
    table = benchmark.pedantic(run_figure13, rounds=1, iterations=1)
    emit(render_table(table, precision=2))
    ours_vs_lib = table.column("ours/library")
    ours_vs_tvm = table.column("ours/tvm")
    emit(
        f"Mean ours/library: {sum(ours_vs_lib)/len(ours_vs_lib):.2f}x; "
        f"mean ours/TVM-style: {sum(ours_vs_tvm)/len(ours_vs_tvm):.2f}x "
        "(paper: up to 2.86x over the library, 1.01–1.27x over TVM)"
    )
    # Shape: the tuned dataflow is on average faster than the library and on
    # par with the TVM-style tuner on every architecture (individual cells can
    # fluctuate with the small measurement budget).
    assert sum(ours_vs_lib) / len(ours_vs_lib) > 1.0
    assert sum(ours_vs_tvm) / len(ours_vs_tvm) > 0.95
    assert all(r > 0.45 for r in ours_vs_tvm)
